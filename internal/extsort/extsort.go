// Package extsort implements classic external merge sort over opaque byte
// records — the well-established O((N/B)·log_{M/B}(N/B)) algorithm of
// Aggarwal and Vitter that the paper's competitor is built on — plus, on
// top of it, the key-path XML sorter the paper benchmarks NEXSORT against.
//
// The engine follows the textbook structure exactly:
//
//  1. Run formation: records accumulate in a buffer of M−1 memory blocks
//     (one block is reserved for the run writer); when the buffer fills it
//     is sorted in memory and written out as an initial run.
//  2. Merging: runs are merged (M−1)-way — M−1 input blocks plus one output
//     block — in passes until a single run remains.
//
// All run I/O goes through an em.Env and is charged to a configurable
// category, so the baseline's cost is measured in exactly the same currency
// as NEXSORT's. The same engine also serves as NEXSORT's Line 11 fallback
// for subtrees too large to sort in memory.
package extsort

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"sync"

	"nexsort/internal/em"
	"nexsort/internal/fence"
	"nexsort/internal/sortkey"
)

// Compare is a total order over encoded records. Comparators must be safe
// for concurrent use (the library's are pure functions): at parallelism
// above one, several runs may be sorting on pool workers at once.
type Compare func(a, b []byte) int

// keyPrefixLen is the inline normalized-key prefix kept next to every
// buffered record and merge cursor. Comparisons hit this fixed-size,
// zero-padded array first — one memcmp, no pointer chase — and fall back
// to the full comparator only on a prefix tie. 16 bytes covers the first
// two-or-so path components of a key-path record; the zero padding keeps
// the truncated comparison decisive (a differing padded prefix always
// agrees with the full key order, see internal/sortkey).
const keyPrefixLen = 16

// entry is one buffered record: the normalized-key prefix inline, then
// the record bytes in the batch arena. Run formation sorts a flat []entry
// with slices.SortFunc — cache-friendly sequential key access, no
// reflection-based swapping.
type entry struct {
	key [keyPrefixLen]byte
	rec []byte
}

// Sorter sorts byte records within a fixed block budget. Create with New,
// feed with Add, then call Sort once; the returned iterator yields records
// in ascending order. Close releases the budget.
//
// Run formation is pipelined: when the buffer fills, the full batch is
// handed to a pooled worker that sorts and spills it while the caller keeps
// filling the next batch. A worker is admitted only if the environment's
// pool has a free slot AND the budget can grant a second working set
// (memBlocks more blocks) — otherwise the run is cut inline, exactly as at
// parallelism one. Each batch reserves its slot in s.runs before the worker
// starts, so the run order — and with it every merge decision and the final
// output — is byte-identical to sequential execution.
//
// The Sorter itself is confined to one goroutine (Add/Sort/Close are not
// concurrent with each other); the parallelism is internal.
type Sorter struct {
	env *em.Env
	cat em.Category
	cmp Compare
	// keyer generates normalized-key prefixes (sortkey.Kernel.AppendKey);
	// nil means every comparison goes through cmp directly.
	keyer func(dst, rec []byte, max int) []byte

	memBlocks int
	bufLimit  int // record bytes buffered before a run is cut

	// fenceOn mirrors Config.FenceIndex/MergeParallel, forced off without
	// a keyer (no normalized keys means no byte-comparable fences);
	// mergeParallel mirrors Config.MergeParallel.
	fenceOn       bool
	mergeParallel int

	entries  []entry
	keyBuf   []byte    // reused normalized-key scratch for Add
	arena    *recArena // frame-backed storage behind entry records
	bufBytes int
	runs     []*em.Stream

	// Worker bookkeeping. mu guards runs slot assignment, fences, firstErr
	// and panicVal against the pool workers; wg tracks in-flight batches.
	mu       sync.Mutex
	wg       sync.WaitGroup
	fences   map[*em.Stream]*em.Stream // run → its fence-key index stream
	firstErr error
	panicVal any

	initialRuns   int
	mergePasses   int
	totalRecords  int64
	totalBytes    int64
	streamedFinal bool
	sorted        bool
	closed        bool
}

// Stats reports how the sort executed, for experiment harnesses: the paper
// reads merge-pass transitions directly off its Figure 6 curve.
type Stats struct {
	Records     int64
	RecordBytes int64
	InitialRuns int
	MergePasses int
	Spilled     bool // false when everything fit in the buffer
	// StreamedFinalMerge reports the scratch-pressure degradation: the
	// final merge was delivered through the Iterator instead of being
	// materialized as one more run (Device.NearFull fired).
	StreamedFinalMerge bool
}

// New creates a sorter that may use memBlocks blocks of main memory,
// granted from env's budget immediately. memBlocks must be at least 3 (two
// input/buffer blocks plus one output block is the smallest merge that
// makes progress). Every comparison goes through cmp; callers with an
// order-preserving normalized-key encoding should prefer NewKernel, which
// turns most comparisons into inline-prefix memcmps.
func New(env *em.Env, cat em.Category, cmp Compare, memBlocks int) (*Sorter, error) {
	return NewKernel(env, cat, sortkey.Kernel{Compare: cmp}, memBlocks)
}

// NewKernel creates a sorter driven by a comparison kernel: k.Compare is
// the record order, and k.AppendKey (when non-nil) supplies the
// order-preserving normalized keys whose first keyPrefixLen bytes are
// cached inline with every buffered record and merge cursor. The kernel
// changes how comparisons execute, never their outcome, so output bytes
// and I/O counts are identical to a plain New sorter with the same order.
func NewKernel(env *em.Env, cat em.Category, k sortkey.Kernel, memBlocks int) (*Sorter, error) {
	if memBlocks < 3 {
		return nil, fmt.Errorf("extsort: need at least 3 memory blocks, got %d", memBlocks)
	}
	if err := env.Budget.Grant(memBlocks); err != nil {
		return nil, fmt.Errorf("extsort: %w", err)
	}
	return &Sorter{
		env:           env,
		cat:           cat,
		cmp:           k.Compare,
		keyer:         k.AppendKey,
		memBlocks:     memBlocks,
		bufLimit:      (memBlocks - 1) * env.Conf.BlockSize,
		arena:         newRecArena(env.Dev.Frames(), memBlocks-1),
		fenceOn:       (env.Conf.FenceIndex || env.Conf.MergeParallel > 0) && k.AppendKey != nil,
		mergeParallel: env.Conf.MergeParallel,
		fences:        make(map[*em.Stream]*em.Stream),
	}, nil
}

// Add buffers one record (copied into the batch arena), cutting an initial
// run when the buffer is full. Records larger than the buffer still sort
// correctly: they form single-record runs.
func (s *Sorter) Add(rec []byte) error {
	if s.sorted {
		return fmt.Errorf("extsort: Add after Sort")
	}
	e := entry{rec: s.arena.alloc(rec)}
	if s.keyer != nil {
		s.keyBuf = s.keyer(s.keyBuf[:0], rec, keyPrefixLen)
		copy(e.key[:], s.keyBuf) // zero-padded when the key is shorter
	}
	s.entries = append(s.entries, e)
	s.bufBytes += len(rec)
	s.totalRecords++
	s.totalBytes += int64(len(rec))
	if s.bufBytes >= s.bufLimit {
		return s.cutRun()
	}
	return nil
}

// recArena carves record copies out of pool frames, replacing the
// one-allocation-per-record pattern with bump allocation inside recycled
// block buffers. The arena holds at most maxFrames frames — the M−1 buffer
// blocks of the sorter's grant, which is exactly what bufLimit lets the
// records fill — and backs one batch: the batch's runs are cut from it,
// then release() recycles the frames wholesale. Oversized records (and the
// rare overflow when per-frame fragmentation exceeds the slack) fall back
// to plain allocations that die with the batch.
type recArena struct {
	pool      *em.FramePool
	maxFrames int
	frames    []em.Frame
	cur       []byte // unused tail of the most recent frame
}

func newRecArena(pool *em.FramePool, maxFrames int) *recArena {
	return &recArena{pool: pool, maxFrames: maxFrames}
}

// alloc returns a copy of rec with storage carved from the arena.
func (a *recArena) alloc(rec []byte) []byte {
	n := len(rec)
	if n > a.pool.FrameSize() || (len(a.frames) == a.maxFrames && len(a.cur) < n) {
		cp := make([]byte, n)
		copy(cp, rec)
		return cp
	}
	if len(a.cur) < n {
		f := a.pool.Acquire()
		a.frames = append(a.frames, f)
		a.cur = f.Bytes()
	}
	out := a.cur[:n:n]
	copy(out, rec)
	a.cur = a.cur[n:]
	return out
}

// release recycles the arena's frames, invalidating every record allocated
// from it, and leaves the arena empty and reusable.
func (a *recArena) release() {
	for _, f := range a.frames {
		a.pool.Release(f)
	}
	a.frames = a.frames[:0]
	a.cur = nil
}

// cutRun sorts the buffer and writes it as an initial run. The run's slot
// in s.runs is claimed here, on the calling goroutine, so run order is
// independent of worker scheduling. If the pool and the budget both admit
// a background batch, the sort+spill happens on a worker while the caller
// refills a fresh buffer; otherwise it happens inline, just as at
// parallelism one. Either way the run's content is the same: the batch is
// fully formed before the cut, and a run's bytes do not depend on which
// device blocks the spill happened to allocate.
func (s *Sorter) cutRun() error {
	if err := s.err(); err != nil {
		return err
	}
	if len(s.entries) == 0 {
		return nil
	}
	s.mu.Lock()
	slot := len(s.runs)
	s.runs = append(s.runs, nil)
	s.mu.Unlock()
	s.initialRuns++

	if s.env.Pool().TryAcquire() {
		// A background batch duplicates the working set — the worker keeps
		// the full buffer plus the writer block while the caller fills new
		// records — so it must win a second grant; under budget pressure
		// the cut falls back inline, keeping memory within M.
		if err := s.env.Budget.Grant(s.memBlocks); err != nil {
			s.env.Pool().Release()
		} else {
			batch := s.entries
			arena := s.arena
			s.entries = nil
			s.arena = newRecArena(s.env.Dev.Frames(), s.memBlocks-1)
			s.bufBytes = 0
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.env.Pool().Release()
				defer s.env.Budget.Release(s.memBlocks)
				defer func() {
					if r := recover(); r != nil {
						s.mu.Lock()
						if s.panicVal == nil {
							s.panicVal = r
						}
						s.mu.Unlock()
					}
				}()
				// The batch's records live in its arena; recycle the frames
				// once the spill is done, before the grant is returned.
				defer arena.release()
				run, err := s.writeRun(batch)
				s.mu.Lock()
				if err != nil {
					if s.firstErr == nil {
						s.firstErr = err
					}
				} else {
					s.runs[slot] = run
				}
				s.mu.Unlock()
			}()
			return nil
		}
	}

	run, err := s.writeRun(s.entries)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.runs[slot] = run
	s.mu.Unlock()
	s.entries = s.entries[:0]
	s.arena.release()
	s.bufBytes = 0
	return nil
}

// sortEntries orders one batch in place. With a keyer, most comparisons
// resolve on the inline prefixes — a fixed-size memcmp over data the sort
// is already touching — and only prefix ties pay for the full comparator.
// Without one, the order is cmp alone. Either way the order is the total
// order of the kernel, so run contents are independent of which path
// resolved each comparison.
func (s *Sorter) sortEntries(entries []entry) {
	if s.keyer == nil {
		slices.SortFunc(entries, func(a, b entry) int { return s.cmp(a.rec, b.rec) })
		return
	}
	slices.SortFunc(entries, func(a, b entry) int {
		if c := bytes.Compare(a.key[:], b.key[:]); c != 0 {
			return c
		}
		return s.cmp(a.rec, b.rec)
	})
}

// writeRun sorts one complete batch and spills it as a length-prefixed run.
// It touches no Sorter state besides env/cat/cmp/keyer, so it is safe on a
// worker.
func (s *Sorter) writeRun(batch []entry) (*em.Stream, error) {
	s.sortEntries(batch)
	run := em.NewStream(s.env.Dev, s.cat)
	w, err := run.NewWriter(nil) // accounted under this sorter's grant
	if err != nil {
		return nil, err
	}
	// Close on every path: the writer's buffer frame must go back to the
	// pool even when the spill fails mid-run.
	defer w.Close()
	var lenBuf [binary.MaxVarintLen64]byte
	var fences []fence.Entry
	var off, nextFenceBlock int64
	bs := int64(s.env.Conf.BlockSize)
	for _, e := range batch {
		if s.fenceOn {
			// One fence per run block: the first record starting in it.
			if blk := off / bs; blk >= nextFenceBlock {
				fences = append(fences, fence.Entry{Offset: off, Key: s.keyer(nil, e.rec, 0)})
				nextFenceBlock = blk + 1
			}
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(e.rec)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return nil, err
		}
		if _, err := w.Write(e.rec); err != nil {
			return nil, err
		}
		off += int64(n) + int64(len(e.rec))
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if s.fenceOn {
		// The index spills after the run writer's frame is back: the
		// working set stays within the batch's grant.
		if err := s.spillFenceIndex(run, fences); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// drain waits for every in-flight batch, re-raises a worker panic on the
// calling goroutine, and returns the first worker error.
func (s *Sorter) drain() error {
	s.wg.Wait()
	return s.err()
}

// Runs reports how many runs exist right now. Meaningful after Flush
// (benchmark harnesses read it between run formation and the merge);
// mid-Add it may lag in-flight background spills.
func (s *Sorter) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// err reports (without waiting) a worker failure recorded so far.
func (s *Sorter) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.panicVal != nil {
		pv := s.panicVal
		s.panicVal = nil
		panic(pv)
	}
	return s.firstErr
}

// AddPresortedRun registers an externally produced, already-sorted run of
// length-prefixed records; the merge phase treats it exactly like an
// initial run the sorter cut itself. NEXSORT's graceful-degeneration mode
// hands its incomplete sorted runs to the final merge this way — the
// paper's "we have incorporated the first step of creating initial sorted
// runs for external merge sort into the loop of Line 2".
func (s *Sorter) AddPresortedRun(run *em.Stream) error {
	if s.sorted {
		return fmt.Errorf("extsort: AddPresortedRun after Sort")
	}
	// Flush buffered records first so run order stays deterministic.
	if err := s.cutRun(); err != nil {
		return err
	}
	s.mu.Lock()
	s.runs = append(s.runs, run)
	s.mu.Unlock()
	s.initialRuns++
	return nil
}

// Sort finishes run formation, runs the merge passes, and returns an
// iterator over the sorted records. The iterator becomes invalid once the
// sorter is closed.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.sorted {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.sorted = true
	// Lifecycle poll before the CPU-heavy phases: the in-memory fast path
	// and a large batch sort perform no device operations for a while, so
	// without this check a cancellation could only be observed once the
	// merge started moving blocks.
	if err := s.env.Dev.Interrupted(); err != nil {
		return nil, err
	}
	// Fast path: everything fit in memory, no run was ever cut (and hence
	// no worker is in flight — workers exist only for cut runs).
	if len(s.runs) == 0 {
		s.sortEntries(s.entries)
		return &Iterator{mem: s.entries}, nil
	}
	if err := s.cutRun(); err != nil {
		return nil, err
	}
	// All runs must be sealed before merging starts; the merge itself runs
	// on the calling goroutine with the base grant, as at parallelism one.
	if err := s.drain(); err != nil {
		return nil, err
	}
	fanIn := s.memBlocks - 1
	for len(s.runs) > 1 {
		// Graceful degradation under scratch pressure: when the device is
		// near its quota and few enough runs remain that each can hold one
		// reader block within this sorter's grant, skip materializing the
		// merged run and hand the caller a streaming final merge instead.
		// Dropping the output block raises the feasible fan-in from M−1 to
		// M, and the pass that would have cost the full data size in
		// writes (plus rereads) costs nothing — the last scratch the run
		// needed was the runs it already has.
		if s.env.Dev.NearFull() && len(s.runs) <= s.memBlocks {
			m, err := newStreamMerger(s, s.runs)
			if err != nil {
				return nil, err
			}
			s.streamedFinal = true
			return &Iterator{run: m}, nil
		}
		if len(s.runs) <= fanIn {
			// Final pass: one merge produces the output run —
			// range-partitioned across the pool when the fence indexes
			// allow, on the serial loser tree otherwise; the bytes are
			// identical either way.
			merged, err := s.finalMerge(s.runs)
			if err != nil {
				return nil, err
			}
			s.runs = []*em.Stream{merged}
			s.mergePasses++
			continue
		}
		next, err := s.mergePass(s.runs, fanIn)
		if err != nil {
			return nil, err
		}
		s.runs = next
		s.mergePasses++
	}
	r, err := newRunReader(s.runs[0])
	if err != nil {
		return nil, err
	}
	return &Iterator{run: r}, nil
}

// mergeCursor tracks one input run during a k-way merge: its reader, the
// current record, and that record's normalized-key prefix cached inline so
// the loser tree's matches are one memcmp over data already in the cursor
// slice — no pointer chase into the run buffers on the compare path.
type mergeCursor struct {
	key    [keyPrefixLen]byte
	r      *runReader
	rec    []byte
	idx    int
	eof    bool
	closed bool
}

// streamMerger yields the k-way loser-tree merge of a set of runs record
// by record, without materializing the merged run. mergeRuns pumps one
// into a run writer during ordinary merge passes; the graceful-degradation
// path hands one directly to the Iterator as the final merge, spending k
// reader blocks and zero scratch writes. Selection order — comparator,
// then run index on ties — is identical either way, so which path
// delivered a record can never change the output bytes.
type streamMerger struct {
	s       *Sorter
	cursors []mergeCursor
	tree    *sortkey.LoserTree
	kbuf    []byte
	started bool
	closed  bool
}

// newStreamMerger opens a reader per run and primes the loser tree. On
// error every already-opened reader is closed.
func newStreamMerger(s *Sorter, runs []*em.Stream) (*streamMerger, error) {
	readers := make([]*runReader, len(runs))
	for i, run := range runs {
		r, err := newRunReader(run)
		if err != nil {
			for _, rr := range readers[:i] {
				rr.close()
			}
			return nil, err
		}
		readers[i] = r
	}
	return newStreamMergerReaders(s, readers)
}

// newStreamMergerReaders primes a loser tree over pre-built readers,
// taking ownership of them (every reader is closed on error). Cursor index
// follows reader order, and cursor index is the tie-break — the
// partitioned merge hands partition slices over in original run order, so
// equal keys resolve exactly as the serial merge would.
func newStreamMergerReaders(s *Sorter, readers []*runReader) (*streamMerger, error) {
	m := &streamMerger{s: s, cursors: make([]mergeCursor, len(readers))}
	for i, r := range readers {
		m.cursors[i] = mergeCursor{r: r, idx: i}
	}
	for i := range m.cursors {
		if err := m.load(&m.cursors[i]); err != nil {
			m.close()
			return nil, err
		}
	}
	m.tree = sortkey.NewLoserTree(len(m.cursors), m.less)
	return m, nil
}

// load advances a cursor to its run's next record, refreshing the inline
// key prefix; at EOF the reader is closed immediately (its buffer frame
// goes back to the pool while the merge continues) and the cursor is
// marked exhausted.
func (m *streamMerger) load(cur *mergeCursor) error {
	rec, err := cur.r.next()
	if err == io.EOF {
		cur.r.close()
		cur.closed = true
		cur.eof = true
		cur.rec = nil
		return nil
	}
	if err != nil {
		return err
	}
	cur.rec = rec
	if m.s.keyer != nil {
		m.kbuf = m.s.keyer(m.kbuf[:0], rec, keyPrefixLen)
		n := copy(cur.key[:], m.kbuf)
		for i := n; i < keyPrefixLen; i++ {
			cur.key[i] = 0
		}
	}
	return nil
}

// less ranks cursors for the loser tree: exhausted runs after every live
// one, then key prefix, then full comparator, then run index.
func (m *streamMerger) less(a, b int32) bool {
	ca, cb := &m.cursors[a], &m.cursors[b]
	if ca.eof != cb.eof {
		return !ca.eof
	}
	if ca.eof {
		return ca.idx < cb.idx
	}
	if m.s.keyer != nil {
		if c := bytes.Compare(ca.key[:], cb.key[:]); c != 0 {
			return c < 0
		}
	}
	if c := m.s.cmp(ca.rec, cb.rec); c != 0 {
		return c < 0
	}
	return ca.idx < cb.idx
}

// next returns the merge's next record, or io.EOF when every run is
// drained. The returned slice is valid until the following next call —
// the previous winner is advanced lazily, here, so the record handed out
// last time stays untouched in its reader buffer until then.
func (m *streamMerger) next() ([]byte, error) {
	if m.started {
		cur := &m.cursors[m.tree.Winner()]
		if !cur.eof {
			if err := m.load(cur); err != nil {
				return nil, err
			}
			m.tree.Fix()
		}
	}
	m.started = true
	cur := &m.cursors[m.tree.Winner()]
	if cur.eof {
		return nil, io.EOF
	}
	return cur.rec, nil
}

// close releases every still-open reader so their buffer frames return to
// the pool. Idempotent.
func (m *streamMerger) close() {
	if m.closed {
		return
	}
	m.closed = true
	for i := range m.cursors {
		if m.cursors[i].r != nil && !m.cursors[i].closed {
			m.cursors[i].r.close()
			m.cursors[i].closed = true
		}
	}
}

// mergeRuns merges the given runs into a single new run, selecting the
// minimum with a tree of losers (see internal/sortkey): ⌈log₂k⌉ matches
// per record against the binary heap's two-per-level sift. Exhausted runs
// stay in the tree ranked after every live one, so the merge ends when the
// winner is at EOF.
func (s *Sorter) mergeRuns(runs []*em.Stream) (_ *em.Stream, retErr error) {
	if len(runs) == 1 {
		return runs[0], nil
	}
	m, err := newStreamMerger(s, runs)
	if err != nil {
		return nil, err
	}
	defer m.close()
	out := em.NewStream(s.env.Dev, s.cat)
	w, err := out.NewWriter(nil)
	if err != nil {
		return nil, err
	}
	defer func() {
		// On failure, close the writer so its buffer frame returns to the
		// pool; the half-written run is abandoned.
		if retErr != nil {
			w.Close()
		}
	}()
	var lenBuf [binary.MaxVarintLen64]byte
	var fences []fence.Entry
	var off, nextFenceBlock int64
	bs := int64(s.env.Conf.BlockSize)
	for {
		rec, err := m.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if s.fenceOn {
			if blk := off / bs; blk >= nextFenceBlock {
				fences = append(fences, fence.Entry{Offset: off, Key: s.keyer(nil, rec, 0)})
				nextFenceBlock = blk + 1
			}
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return nil, err
		}
		if _, err := w.Write(rec); err != nil {
			return nil, err
		}
		off += int64(n) + int64(len(rec))
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if s.fenceOn {
		if err := s.spillFenceIndex(out, fences); err != nil {
			return nil, err
		}
	}
	s.forgetFences(runs)
	return out, nil
}

// Stats returns execution statistics. Valid after Sort.
func (s *Sorter) Stats() Stats {
	return Stats{
		Records:            s.totalRecords,
		RecordBytes:        s.totalBytes,
		InitialRuns:        s.initialRuns,
		MergePasses:        s.mergePasses,
		Spilled:            s.initialRuns > 0,
		StreamedFinalMerge: s.streamedFinal,
	}
}

// Close releases the sorter's memory grant. In-flight workers are drained
// first: each worker releases its own batch grant on the way out, so
// closing mid-flight (the error path) can neither double-release nor leak
// budget blocks. A worker panic is re-raised here if no earlier call
// surfaced it; the base grant is still released on that unwind.
func (s *Sorter) Close() {
	if s.closed {
		return
	}
	s.closed = true
	defer s.env.Budget.Release(s.memBlocks)
	defer func() {
		// The current batch arena (still referenced by Iterator.mem on the
		// in-memory fast path) is recycled here, before the grant goes back.
		s.arena.release()
		s.entries = nil
	}()
	s.drain() //nolint:errcheck // terminal errors were already surfaced by Add/Sort
}

// recordSource is a stream of sorted records behind an Iterator: a single
// materialized run (runReader) or the streaming final merge (streamMerger).
type recordSource interface {
	next() ([]byte, error)
	close()
}

// Iterator yields sorted records. Exactly one of mem/run is set.
type Iterator struct {
	mem []entry
	i   int
	run recordSource
}

// Next returns the next record, or io.EOF. The returned slice is valid
// until the following Next call.
func (it *Iterator) Next() ([]byte, error) {
	if it.run != nil {
		return it.run.next()
	}
	if it.i >= len(it.mem) {
		return nil, io.EOF
	}
	rec := it.mem[it.i].rec
	it.i++
	return rec, nil
}

// Close releases the iterator's reader.
func (it *Iterator) Close() {
	if it.run != nil {
		it.run.close()
	}
}

// recordByteSource is the byte stream a runReader decodes records from: a
// whole run (em.StreamReader) or the partitioned merge's stitched view of
// one partition's slice of a run (chainSource).
type recordByteSource interface {
	io.Reader
	io.ByteReader
}

// runReader streams length-prefixed records out of a record byte source.
type runReader struct {
	src     recordByteSource
	closeFn func() // releases the source's device reader, if it has one
	buf     []byte
}

func newRunReader(run *em.Stream) (*runReader, error) {
	sr, err := run.NewReader(nil, 0)
	if err != nil {
		return nil, err
	}
	return &runReader{src: sr, closeFn: func() { sr.Close() }}, nil
}

// maxRecordLen bounds decoded record lengths against corruption; records
// legitimately reach subtree size, so the cap is generous.
const maxRecordLen = 1 << 30

func (r *runReader) next() ([]byte, error) {
	n, err := binary.ReadUvarint(r.src)
	if err != nil {
		return nil, err // io.EOF at a record boundary is the clean end
	}
	if n > maxRecordLen {
		return nil, fmt.Errorf("extsort: corrupt run: record length %d", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.src, r.buf); err != nil {
		return nil, fmt.Errorf("extsort: truncated record: %w", err)
	}
	return r.buf, nil
}

func (r *runReader) close() {
	if r.closeFn != nil {
		r.closeFn()
	}
}
