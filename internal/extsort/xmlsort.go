package extsort

import (
	"fmt"
	"io"

	"nexsort/internal/compact"
	"nexsort/internal/em"
	"nexsort/internal/keypath"
	"nexsort/internal/keys"
	"nexsort/internal/sortkey"
	"nexsort/internal/xmltok"
)

// XMLReport summarizes a key-path baseline sort for the experiment harness.
type XMLReport struct {
	// Elements is the number of element nodes in the input.
	Elements int64
	// Records is the number of key-path records sorted (elements + text
	// nodes).
	Records int64
	// RecordBytes is the total encoded size of the key-path
	// representation — the space blow-up relative to the input that
	// Section 1 calls out on tall documents.
	RecordBytes int64
	// InputBytes is the size of the input document.
	InputBytes int64
	// InitialRuns and MergePasses describe the external sort's shape; the
	// total number of passes over the data is MergePasses+1.
	InitialRuns int
	MergePasses int
}

// XMLOptions configures a baseline sort.
type XMLOptions struct {
	// DepthLimit enables depth-limited sorting (Section 3.2): child lists
	// of elements at levels 1..DepthLimit are sorted; deeper subtrees keep
	// document order. 0 means head-to-toe.
	DepthLimit int
	// Compact applies the Section 3.2 compaction techniques to the
	// key-path records (dictionary names, elided end tags), shrinking the
	// representation the external sort spills and merges — the paper
	// enables this for the baseline too.
	Compact bool
	// SortChildrenOf, when non-empty, switches to XSort semantics (the
	// related-work algorithm of Avila-Campillo et al. the paper contrasts
	// itself with in Section 2): only the child lists of elements whose
	// tag name appears here are sorted; everything else — including the
	// interiors of the sorted children — keeps document order. "XSort
	// sorts less, and should complete in less time than NEXSORT"; it is
	// likewise implemented as standard external merge sort, by degrading
	// every non-selected element's key to the empty string so the
	// (key, position) order reduces to document order there.
	SortChildrenOf []string
	// Indent pretty-prints the output with the given unit; empty writes
	// compact XML.
	Indent string
}

// SortXML sorts an XML document with the paper's competitor: generate the
// key-path representation, run external merge sort over the records, and
// reconstruct the document from the sorted stream. The criterion must be
// start-resolvable (attribute or tag-name keys); see
// keypath.ErrKeyNotResolvable.
//
// All memory left in env's budget (beyond two blocks reserved for input and
// output buffering) is given to the sorter, matching the paper's
// observation that "external merge sort always needs as much memory as
// possible".
func SortXML(env *em.Env, c *keys.Criterion, in io.Reader, out io.Writer, opts XMLOptions) (*XMLReport, error) {
	for _, r := range c.Rules {
		if !r.Source.StartResolvable() {
			return nil, fmt.Errorf("%w (rule for %q uses %s)", keypath.ErrKeyNotResolvable, r.Tag, r.Source)
		}
	}

	// Reserve one block each for the streaming input and output buffers.
	if err := env.Budget.Grant(2); err != nil {
		return nil, fmt.Errorf("extsort: input/output buffers: %w", err)
	}
	defer env.Budget.Release(2)

	// The key-path kernel: record order via the normalized-key comparator,
	// with inline key prefixes accelerating both run formation and the
	// k-way merge (see internal/sortkey).
	sorter, err := NewKernel(env, em.CatMergeRun, sortkey.KeyPath(), env.Budget.Free())
	if err != nil {
		return nil, err
	}
	defer sorter.Close()

	report := &XMLReport{}
	cr := em.NewCountingReader(in, env.Dev, em.CatInput)
	defer cr.Close()
	parser := xmltok.NewParser(cr, xmltok.DefaultParserOptions())
	annot := keys.NewAnnotator(c, nil)
	extract := keypath.NewExtractor()
	var enc *compact.Encoder
	var dec *compact.Decoder
	if opts.Compact {
		dict := compact.NewDictionary()
		enc = compact.NewEncoder(dict)
		dec = compact.NewDecoder(dict)
	}

	targets := make(map[string]bool, len(opts.SortChildrenOf))
	for _, tag := range opts.SortChildrenOf {
		targets[tag] = true
	}
	var openTags []string // XSort parent tracking (in-memory, like the path)

	var encBuf []byte
	for {
		tok, err := parser.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if tok, err = annot.Annotate(tok); err != nil {
			return nil, err
		}
		if tok.Kind == xmltok.KindStart {
			report.Elements++
			// Below the depth limit no reordering happens, so the path
			// component degrades to (“”, seq) and document order wins.
			if opts.DepthLimit > 0 && extract.Depth()+1 > opts.DepthLimit+1 {
				tok = tok.WithKey("")
			}
			if len(targets) > 0 {
				// XSort: a real key only for direct children of target
				// elements.
				if len(openTags) == 0 || !targets[openTags[len(openTags)-1]] {
					tok = tok.WithKey("")
				}
				openTags = append(openTags, tok.Name)
			}
		}
		if tok.Kind == xmltok.KindEnd && len(targets) > 0 {
			openTags = openTags[:len(openTags)-1]
		}
		if enc != nil {
			tok = enc.Encode(tok)
		}
		rec, ok, err := extract.OnToken(tok)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		encBuf = keypath.AppendRecord(encBuf[:0], rec)
		if err := sorter.Add(encBuf); err != nil {
			return nil, err
		}
	}
	cr.Finish()
	report.InputBytes = cr.BytesRead()

	it, err := sorter.Sort()
	if err != nil {
		return nil, err
	}
	defer it.Close()

	cw := em.NewCountingWriter(out, env.Dev, em.CatOutput)
	defer cw.Close()
	var w *xmltok.Writer
	if opts.Indent != "" {
		w = xmltok.NewIndentWriter(cw, opts.Indent)
	} else {
		w = xmltok.NewWriter(cw)
	}
	var recDec keypath.Decoder
	builder := keypath.NewBuilder(func(tok xmltok.Token) error {
		if dec != nil {
			var err error
			if tok, err = dec.Decode(tok); err != nil {
				return err
			}
		}
		tok.HasKey, tok.Key = false, ""
		return w.WriteToken(tok)
	})
	for {
		raw, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rec, err := recDec.ReadRecord(&sliceCursor{buf: raw})
		if err != nil {
			return nil, fmt.Errorf("extsort: decoding sorted record: %w", err)
		}
		if err := builder.OnRecord(rec); err != nil {
			return nil, err
		}
	}
	if err := builder.Finish(); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}

	st := sorter.Stats()
	report.Records = st.Records
	report.RecordBytes = st.RecordBytes
	report.InitialRuns = st.InitialRuns
	report.MergePasses = st.MergePasses
	return report, nil
}

// sliceCursor is an io.ByteReader and io.Reader over a byte slice without
// the bytes.Reader allocation.
type sliceCursor struct {
	buf []byte
	pos int
}

func (c *sliceCursor) ReadByte() (byte, error) {
	if c.pos >= len(c.buf) {
		return 0, io.EOF
	}
	b := c.buf[c.pos]
	c.pos++
	return b, nil
}

func (c *sliceCursor) Read(p []byte) (int, error) {
	if c.pos >= len(c.buf) {
		return 0, io.EOF
	}
	n := copy(p, c.buf[c.pos:])
	c.pos += n
	return n, nil
}
