package extsort

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"nexsort/internal/em"
)

// quotaRecords generates a deterministic record set small enough to form a
// handful of initial runs under a 3-block sorter with 64-byte blocks.
func quotaRecords(n int) [][]byte {
	rng := rand.New(rand.NewSource(99))
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("rec-%04d-%08d", rng.Intn(10000), i))
	}
	return recs
}

// quotaSort runs one sort of recs under the given scratch quota (0 =
// unlimited) and returns the concatenated output, the sorter stats, the
// terminal error, and the blocks the device allocated.
func quotaSort(t *testing.T, recs [][]byte, quota int64) (out []byte, st Stats, allocated int64, err error) {
	t.Helper()
	env, envErr := em.NewEnv(em.Config{BlockSize: 64, MemBlocks: 16, ScratchQuotaBlocks: quota})
	if envErr != nil {
		t.Fatal(envErr)
	}
	defer func() {
		allocated = env.Dev.Allocated()
		if cErr := env.Close(); cErr != nil && err == nil {
			err = cErr
		}
		if live := env.Dev.Frames().Live(); live != 0 {
			t.Errorf("quota=%d: %d frames live after close", quota, live)
		}
		if inUse := env.Budget.InUse(); inUse != 0 {
			t.Errorf("quota=%d: %d budget blocks in use after close", quota, inUse)
		}
	}()

	s, err := New(env, em.CatMergeRun, bytesCompare, 3)
	if err != nil {
		return nil, st, 0, err
	}
	defer s.Close()
	for _, rec := range recs {
		if err := s.Add(rec); err != nil {
			return nil, s.Stats(), 0, err
		}
	}
	it, err := s.Sort()
	if err != nil {
		return nil, s.Stats(), 0, err
	}
	defer it.Close()
	var buf bytes.Buffer
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, s.Stats(), 0, err
		}
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), s.Stats(), 0, nil
}

// TestScratchQuotaDegradation drives the scratch quota down from "roomy"
// to "impossible" and checks the three regimes of the failure model: with
// room to spare the sort is byte-identical to the unlimited run; as the
// quota tightens the sorter degrades gracefully — it streams the final
// merge instead of materializing one more run, still byte-identical; and
// below the space the initial runs themselves need, it fails with the
// typed ErrScratchExhausted, leak-free.
func TestScratchQuotaDegradation(t *testing.T) {
	recs := quotaRecords(60)

	want, cleanStats, allocated, err := quotaSort(t, recs, 0)
	if err != nil {
		t.Fatalf("unlimited sort failed: %v", err)
	}
	if !cleanStats.Spilled || cleanStats.InitialRuns < 2 {
		t.Fatalf("workload too small to spill: stats=%+v", cleanStats)
	}
	if cleanStats.StreamedFinalMerge {
		t.Fatalf("unlimited sort claims scratch-pressure degradation: stats=%+v", cleanStats)
	}
	t.Logf("unlimited run: %d initial runs, %d merge passes, %d blocks allocated",
		cleanStats.InitialRuns, cleanStats.MergePasses, allocated)

	var degraded, maxExhausted, minSuccess int64
	for quota := allocated; quota >= 1; quota-- {
		out, st, _, err := quotaSort(t, recs, quota)
		switch {
		case err == nil:
			if !bytes.Equal(out, want) {
				t.Fatalf("quota=%d: output differs from unlimited run (streamed=%v)",
					quota, st.StreamedFinalMerge)
			}
			if st.StreamedFinalMerge && degraded == 0 {
				degraded = quota
			}
			minSuccess = quota
		case em.IsExhausted(err):
			if maxExhausted == 0 {
				maxExhausted = quota
			}
		default:
			t.Fatalf("quota=%d: untyped error %v", quota, err)
		}
	}
	if degraded == 0 {
		t.Error("no quota triggered the streamed final merge; NearFull never fired")
	}
	if maxExhausted == 0 {
		t.Error("no quota produced ErrScratchExhausted; the capacity layer never refused a write")
	}
	// The degradation must buy real headroom: some quota that streams the
	// final merge and succeeds sits below a quota that a materializing run
	// could not fit. (The regimes interleave near the top of the range —
	// the 7/8 NearFull heuristic can miss a final pass that barely does
	// not fit — so the comparison is min success vs max exhaustion, not a
	// clean boundary.)
	if minSuccess >= maxExhausted {
		t.Errorf("degradation bought no headroom: smallest working quota %d, largest exhausted quota %d",
			minSuccess, maxExhausted)
	}
	t.Logf("first streamed merge at quota=%d, smallest working quota=%d, largest exhausted quota=%d",
		degraded, minSuccess, maxExhausted)
}
