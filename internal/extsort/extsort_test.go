package extsort

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/em"
	"nexsort/internal/keys"
	"nexsort/internal/xmltree"
)

func newEnv(t *testing.T, blockSize, memBlocks int) *em.Env {
	t.Helper()
	env, err := em.NewEnv(em.Config{BlockSize: blockSize, MemBlocks: memBlocks})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env
}

func bytesCompare(a, b []byte) int { return bytes.Compare(a, b) }

func TestSorterInMemoryFastPath(t *testing.T) {
	env := newEnv(t, 256, 8)
	s, err := New(env, em.CatMergeRun, bytesCompare, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rec := range []string{"pear", "apple", "orange"} {
		if err := s.Add([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(rec))
	}
	want := []string{"apple", "orange", "pear"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	st := s.Stats()
	if st.Spilled || st.InitialRuns != 0 || st.Records != 3 {
		t.Errorf("stats = %+v", st)
	}
	if env.Stats.TotalIOs() != 0 {
		t.Errorf("in-memory sort cost %d IOs", env.Stats.TotalIOs())
	}
}

func TestSorterSpillAndMerge(t *testing.T) {
	// Tiny blocks and memory force multiple runs and at least one merge
	// pass.
	env := newEnv(t, 64, 16)
	s, err := New(env, em.CatMergeRun, bytesCompare, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(42))
	var want []string
	for i := 0; i < 400; i++ {
		rec := fmt.Sprintf("%06d", rng.Intn(100000))
		want = append(want, rec)
		if err := s.Add([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for i, w := range want {
		rec, err := it.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(rec) != w {
			t.Fatalf("record %d = %q, want %q", i, rec, w)
		}
	}
	if _, err := it.Next(); err != io.EOF {
		t.Errorf("want EOF at end, got %v", err)
	}
	st := s.Stats()
	if !st.Spilled || st.InitialRuns < 4 || st.MergePasses < 1 {
		t.Errorf("expected a real external sort, stats = %+v", st)
	}
	if st.Records != 400 {
		t.Errorf("Records = %d", st.Records)
	}
}

// TestSorterCompressedSpill drives run formation and the merge read path
// through the spill codec: with CompressSpill on, a heavily spilling sort
// must emit the identical record sequence and identical logical I/O
// counts, while the bytes crossing the device shrink — key-path-shaped
// records (fixed-width decimal strings) front-code and deflate well.
func TestSorterCompressedSpill(t *testing.T) {
	// Block size 256 (not the other tests' 64): the codec's 16-byte slot
	// header and deflate's stream overhead are per block, so compression
	// only pays at realistic block sizes.
	sortOnce := func(compress bool) ([]string, map[string]em.IOCount, *em.Env) {
		env, err := em.NewEnv(em.Config{BlockSize: 256, MemBlocks: 16, CompressSpill: compress})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { env.Close() })
		s, err := New(env, em.CatMergeRun, bytesCompare, 3)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 400; i++ {
			if err := s.Add([]byte(fmt.Sprintf("%06d", rng.Intn(100000)))); err != nil {
				t.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var got []string
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, string(rec))
		}
		if !s.Stats().Spilled || s.Stats().MergePasses < 1 {
			t.Fatalf("compress=%v: expected a real external sort, stats = %+v", compress, s.Stats())
		}
		return got, env.Stats.Snapshot(), env
	}

	plainRecs, plainIOs, _ := sortOnce(false)
	compRecs, compIOs, compEnv := sortOnce(true)
	if fmt.Sprint(compRecs) != fmt.Sprint(plainRecs) {
		t.Error("compressed sort emitted a different record sequence")
	}
	if live := compEnv.SpillCodecFramesLive(); live != 0 {
		t.Errorf("%d codec scratch frames live after sort", live)
	}
	var plainW, compW int64
	for c, n := range plainIOs {
		m := compIOs[c]
		if n.Reads != m.Reads || n.Writes != m.Writes || n.ReadBytes != m.ReadBytes || n.WriteBytes != m.WriteBytes {
			t.Errorf("%s: logical counts moved under compression: %+v vs %+v", c, n, m)
		}
		plainW += n.PhysWriteBytes
		compW += m.PhysWriteBytes
	}
	if compW == 0 || compW >= plainW {
		t.Errorf("physical spill write bytes %d compressed vs %d plain; want a reduction", compW, plainW)
	}
}

func TestSorterMergePassCounts(t *testing.T) {
	// With fan-in f = memBlocks-1 = 2 and r initial runs, merge passes
	// should be ceil(log2(r)).
	for _, runs := range []int{2, 3, 4, 7, 8} {
		env := newEnv(t, 64, 8)
		s, err := New(env, em.CatMergeRun, bytesCompare, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Each Add of a 128-byte record exceeds the 2-block buffer,
		// cutting one run per record.
		for i := 0; i < runs; i++ {
			rec := bytes.Repeat([]byte{byte('a' + i)}, 128)
			if err := s.Add(rec); err != nil {
				t.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			t.Fatal(err)
		}
		it.Close()
		wantPasses := 0
		for n := runs; n > 1; n = (n + 1) / 2 {
			wantPasses++
		}
		if got := s.Stats().MergePasses; got != wantPasses {
			t.Errorf("%d runs: MergePasses = %d, want %d", runs, got, wantPasses)
		}
		if got := s.Stats().InitialRuns; got != runs {
			t.Errorf("InitialRuns = %d, want %d", runs, got)
		}
		s.Close()
		env.Close()
	}
}

func TestSorterBudget(t *testing.T) {
	env := newEnv(t, 128, 6)
	if _, err := New(env, em.CatMergeRun, bytesCompare, 7); err == nil {
		t.Error("over-budget sorter should fail")
	}
	if _, err := New(env, em.CatMergeRun, bytesCompare, 2); err == nil {
		t.Error("sorter with <3 blocks should fail")
	}
	s, err := New(env, em.CatMergeRun, bytesCompare, 6)
	if err != nil {
		t.Fatal(err)
	}
	if env.Budget.InUse() != 6 {
		t.Errorf("InUse = %d", env.Budget.InUse())
	}
	s.Close()
	s.Close() // idempotent
	if env.Budget.InUse() != 0 {
		t.Errorf("leaked %d blocks", env.Budget.InUse())
	}
}

func TestSorterMisuse(t *testing.T) {
	env := newEnv(t, 128, 6)
	s, _ := New(env, em.CatMergeRun, bytesCompare, 3)
	defer s.Close()
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]byte("late")); err == nil {
		t.Error("Add after Sort should fail")
	}
	if _, err := s.Sort(); err == nil {
		t.Error("double Sort should fail")
	}
}

// Property: the external sorter agrees with sort.Slice for random record
// sets under random tiny geometries.
func TestSorterQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env, err := em.NewEnv(em.Config{BlockSize: 64, MemBlocks: 5 + rng.Intn(8)})
		if err != nil {
			return false
		}
		defer env.Close()
		s, err := New(env, em.CatMergeRun, bytesCompare, 3+rng.Intn(env.Budget.Total()-2))
		if err != nil {
			return false
		}
		defer s.Close()
		n := rng.Intn(300)
		recs := make([]string, n)
		for i := range recs {
			recs[i] = fmt.Sprintf("%04d-%c", rng.Intn(1000), 'a'+rune(rng.Intn(26)))
			if err := s.Add([]byte(recs[i])); err != nil {
				return false
			}
		}
		sort.Strings(recs)
		it, err := s.Sort()
		if err != nil {
			return false
		}
		defer it.Close()
		for _, want := range recs {
			rec, err := it.Next()
			if err != nil || string(rec) != want {
				return false
			}
		}
		_, err = it.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- key-path XML baseline ---

const staffDoc = `<company>
  <region name="NE"><branch name="Durham"><employee ID="454"/></branch></region>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454"><name>Late</name></employee>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
</company>`

func paperCriterion() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
		{Tag: "", Source: keys.ByTag()},
	}}
}

// oracleSort returns the document sorted by the in-memory recursive oracle.
func oracleSort(t *testing.T, doc string, c *keys.Criterion, depth int) string {
	t.Helper()
	n, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	n.ComputeKeys(c)
	n.SortToDepth(depth)
	return n.XMLString()
}

func TestSortXMLMatchesOracle(t *testing.T) {
	env := newEnv(t, 4096, 16)
	var out strings.Builder
	rep, err := SortXML(env, paperCriterion(), strings.NewReader(staffDoc), &out, XMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleSort(t, staffDoc, paperCriterion(), 0)
	if out.String() != want {
		t.Errorf("baseline output:\n got %s\nwant %s", out.String(), want)
	}
	// company + 2 regions + 3 branches + 3 employees + 2 names + phone.
	if rep.Elements != 12 {
		t.Errorf("Elements = %d, want 12", rep.Elements)
	}
	if rep.Records != 15 { // 12 elements + 3 text nodes
		t.Errorf("Records = %d, want 15", rep.Records)
	}
	if rep.RecordBytes <= rep.InputBytes/4 {
		t.Logf("record bytes %d vs input %d", rep.RecordBytes, rep.InputBytes)
	}
}

func TestSortXMLSpilledMatchesOracle(t *testing.T) {
	// Force a genuinely external sort with a big random document and a
	// tiny environment.
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, `<g name="g%02d">`, rng.Intn(50))
		for j := rng.Intn(4); j > 0; j-- {
			fmt.Fprintf(&sb, `<item ID="%03d">v%d</item>`, rng.Intn(500), rng.Intn(10))
		}
		sb.WriteString("</g>")
	}
	sb.WriteString("</root>")
	doc := sb.String()

	c := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "g", Source: keys.ByAttr("name")},
		{Tag: "item", Source: keys.ByAttr("ID")},
	}}
	env := newEnv(t, 128, 8)
	var out strings.Builder
	rep, err := SortXML(env, c, strings.NewReader(doc), &out, XMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitialRuns < 2 {
		t.Fatalf("expected an external sort, got %+v", rep)
	}
	want := oracleSort(t, doc, c, 0)
	if out.String() != want {
		t.Error("spilled baseline output differs from oracle")
	}
	if env.Stats.IOs(em.CatMergeRun) == 0 || env.Stats.Reads(em.CatInput) == 0 ||
		env.Stats.Writes(em.CatOutput) == 0 {
		t.Errorf("missing I/O accounting: %v", env.Stats.Snapshot())
	}
}

func TestSortXMLDepthLimited(t *testing.T) {
	doc := `<r><g name="b"><i name="z"><leaf name="2"/><leaf name="1"/></i><i name="a"/></g><g name="a"/></r>`
	c := keys.ByAttrOrTag("name")
	env := newEnv(t, 4096, 16)
	var out strings.Builder
	if _, err := SortXML(env, c, strings.NewReader(doc), &out, XMLOptions{DepthLimit: 2}); err != nil {
		t.Fatal(err)
	}
	want := oracleSort(t, doc, c, 2)
	if out.String() != want {
		t.Errorf("depth-limited baseline:\n got %s\nwant %s", out.String(), want)
	}
}

func TestSortXMLRejectsPathCriteria(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByPath("a")}}}
	env := newEnv(t, 4096, 16)
	_, err := SortXML(env, c, strings.NewReader("<e/>"), io.Discard, XMLOptions{})
	if err == nil {
		t.Fatal("path criterion should be rejected")
	}
}

func TestSortXMLMalformedInput(t *testing.T) {
	env := newEnv(t, 4096, 16)
	_, err := SortXML(env, paperCriterion(), strings.NewReader("<a><b></a>"), io.Discard, XMLOptions{})
	if err == nil {
		t.Fatal("malformed input should fail")
	}
	if env.Budget.InUse() != 0 {
		t.Errorf("failed sort leaked %d budget blocks", env.Budget.InUse())
	}
}

// Property: baseline output equals the oracle on random documents with
// random geometries.
func TestSortXMLQuick(t *testing.T) {
	c := keys.ByAttrOrTag("k")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomXML(rng, 80)
		env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: 6 + rng.Intn(10)})
		if err != nil {
			return false
		}
		defer env.Close()
		var out strings.Builder
		if _, err := SortXML(env, c, strings.NewReader(doc), &out, XMLOptions{}); err != nil {
			return false
		}
		n, err := xmltree.ParseString(doc)
		if err != nil {
			return false
		}
		n.ComputeKeys(c)
		n.SortRecursive()
		return out.String() == n.XMLString() && env.Budget.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomXML builds a random well-formed document with attribute keys.
func randomXML(rng *rand.Rand, maxElems int) string {
	var sb strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		tag := string(rune('a' + rng.Intn(3)))
		fmt.Fprintf(&sb, `<%s k="%d">`, tag, rng.Intn(20))
		budget--
		for i := rng.Intn(4); i > 0; i-- {
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "t%d", rng.Intn(10))
			} else if depth < 8 {
				budget = emit(depth+1, budget)
			}
		}
		sb.WriteString("</" + tag + ">")
		return budget
	}
	sb.WriteString(`<root k="r">`)
	budget := 1 + rng.Intn(maxElems)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</root>")
	return sb.String()
}

// TestXSortSemantics: with SortChildrenOf, only the named elements' child
// lists reorder; everything else — including the sorted children's
// interiors — keeps document order (the related-work XSort of Section 2).
func TestXSortSemantics(t *testing.T) {
	doc := `<lib>` +
		`<shelf id="s1"><book id="9"><c id="z"/><c id="a"/></book><book id="2"><c id="q"/><c id="b"/></book></shelf>` +
		`<shelf id="s0"><book id="5"/><book id="1"/></shelf>` +
		`</lib>`
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("id")}}}
	env := newEnv(t, 4096, 16)
	var out strings.Builder
	if _, err := SortXML(env, c, strings.NewReader(doc), &out, XMLOptions{SortChildrenOf: []string{"shelf"}}); err != nil {
		t.Fatal(err)
	}
	// Shelves (children of lib) keep order; books (children of shelf)
	// sort; c's (children of book) keep order.
	want := `<lib>` +
		`<shelf id="s1"><book id="2"><c id="q"></c><c id="b"></c></book><book id="9"><c id="z"></c><c id="a"></c></book></shelf>` +
		`<shelf id="s0"><book id="1"></book><book id="5"></book></shelf>` +
		`</lib>`
	if out.String() != want {
		t.Errorf("XSort output:\n got %s\nwant %s", out.String(), want)
	}
}

// TestXSortSortsLess: XSort's output differs from the full sort exactly in
// the lists it leaves alone, and the full sort of XSort's output equals
// the full sort of the input (XSort is a partial step toward it).
func TestXSortSortsLess(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	doc := randomXML(rng, 120)
	c := keys.ByAttrOrTag("k")
	run := func(opts XMLOptions, input string) string {
		env, err := em.NewEnv(em.Config{BlockSize: 512, MemBlocks: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		var out strings.Builder
		if _, err := SortXML(env, c, strings.NewReader(input), &out, opts); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	full := run(XMLOptions{}, doc)
	xsorted := run(XMLOptions{SortChildrenOf: []string{"root"}}, doc)
	if xsorted == full {
		t.Skip("document too simple to distinguish XSort from a full sort")
	}
	if run(XMLOptions{}, xsorted) != full {
		t.Error("fully sorting XSort's output must equal fully sorting the input")
	}
}
