package extsort

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/sortkey"
)

// writePresortedRun spills records as one length-prefixed run, the format
// AddPresortedRun expects.
func writePresortedRun(t *testing.T, env *em.Env, recs [][]byte) *em.Stream {
	t.Helper()
	run := em.NewStream(env.Dev, em.CatMergeRun)
	w, err := run.NewWriter(nil)
	if err != nil {
		t.Fatal(err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, rec := range recs {
		n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return run
}

func drainSorted(t *testing.T, s *Sorter) []string {
	t.Helper()
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(rec))
	}
}

// identityKernel normalizes a record to itself: bytes.Compare order with the
// prefix-caching machinery fully engaged.
func identityKernel() sortkey.Kernel {
	return sortkey.Kernel{
		Compare: bytesCompare,
		AppendKey: func(dst, rec []byte, max int) []byte {
			if max > 0 && len(rec) > max {
				rec = rec[:max]
			}
			return append(dst, rec...)
		},
	}
}

// TestLoserMergeBoundaryFanIns drives the merge at the fan-ins where the
// tournament tree degenerates: a single run (no merge at all), two runs
// (one internal node), and the full memBlocks-1 fan-in, with duplicate
// keys across runs and runs of different lengths so some exhaust while
// others are still live.
func TestLoserMergeBoundaryFanIns(t *testing.T) {
	const memBlocks = 5
	for _, k := range []int{1, 2, memBlocks - 1} {
		for _, kernel := range []struct {
			name string
			k    sortkey.Kernel
		}{
			{"cmp-only", sortkey.Kernel{Compare: bytesCompare}},
			{"with-keyer", identityKernel()},
		} {
			t.Run(fmt.Sprintf("fanin=%d/%s", k, kernel.name), func(t *testing.T) {
				env := newEnv(t, 64, 16)
				s, err := NewKernel(env, em.CatMergeRun, kernel.k, memBlocks)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				var want []string
				for i := 0; i < k; i++ {
					// Run i gets i+1 records: run 0 exhausts after one
					// record while the others are still live. "dup" appears
					// in every run.
					var recs [][]byte
					for j := 0; j <= i; j++ {
						recs = append(recs, []byte(fmt.Sprintf("rec-%02d-%02d", j, i)))
					}
					recs = append(recs, []byte("zz-dup"))
					want = append(want, "zz-dup")
					for _, r := range recs[:len(recs)-1] {
						want = append(want, string(r))
					}
					if err := s.AddPresortedRun(writePresortedRun(t, env, recs)); err != nil {
						t.Fatal(err)
					}
				}
				got := drainSorted(t, s)
				if len(got) != len(want) {
					t.Fatalf("merged %d records, want %d", len(got), len(want))
				}
				for i := 1; i < len(got); i++ {
					if got[i-1] > got[i] {
						t.Fatalf("output out of order at %d: %q > %q", i, got[i-1], got[i])
					}
				}
				dups := 0
				for _, g := range got {
					if g == "zz-dup" {
						dups++
					}
				}
				if dups != k {
					t.Errorf("duplicate key survived %d times, want %d", dups, k)
				}
				s.Close()
				if live := env.Dev.Frames().Live(); live != 0 {
					t.Errorf("fan-in %d leaked %d pooled frames", k, live)
				}
				if inUse := env.Budget.InUse(); inUse != 0 {
					t.Errorf("fan-in %d leaked %d budget blocks", k, inUse)
				}
			})
		}
	}
}

// TestLoserMergeDeterministicTies pins the tie-break discipline across the
// heap→loser-tree swap: records that compare equal pop in run-index order.
// The comparator looks only at the first byte, so the trailing run tag
// records which cursor each pop came from.
func TestLoserMergeDeterministicTies(t *testing.T) {
	firstByte := sortkey.Kernel{
		Compare: func(a, b []byte) int {
			if a[0] != b[0] {
				if a[0] < b[0] {
					return -1
				}
				return 1
			}
			return 0
		},
		AppendKey: func(dst, rec []byte, max int) []byte { return append(dst, rec[0]) },
	}
	env := newEnv(t, 64, 16)
	s, err := NewKernel(env, em.CatMergeRun, firstByte, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Three runs, each holding key 'a' then key 'b', tagged by run.
	for i := 0; i < 3; i++ {
		recs := [][]byte{[]byte(fmt.Sprintf("a%d", i)), []byte(fmt.Sprintf("b%d", i))}
		if err := s.AddPresortedRun(writePresortedRun(t, env, recs)); err != nil {
			t.Fatal(err)
		}
	}
	got := strings.Join(drainSorted(t, s), " ")
	want := "a0 a1 a2 b0 b1 b2"
	if got != want {
		t.Errorf("tie order = %q, want %q", got, want)
	}
}

// TestLoserMergePrefixTieFallsBackToCmp forces prefix collisions: records
// share their first keyPrefixLen bytes and differ only beyond the inline
// prefix, so every merge decision must fall through the memcmp to the full
// comparator.
func TestLoserMergePrefixTieFallsBackToCmp(t *testing.T) {
	env := newEnv(t, 64, 16)
	s, err := NewKernel(env, em.CatMergeRun, identityKernel(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prefix := strings.Repeat("p", keyPrefixLen)
	var want []string
	for i := 0; i < 3; i++ {
		var recs [][]byte
		for j := 0; j < 4; j++ {
			rec := fmt.Sprintf("%s-%02d-%02d", prefix, j, i)
			recs = append(recs, []byte(rec))
			want = append(want, rec)
		}
		if err := s.AddPresortedRun(writePresortedRun(t, env, recs)); err != nil {
			t.Fatal(err)
		}
	}
	got := drainSorted(t, s)
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("output out of order at %d: %q > %q", i, got[i-1], got[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
}

// TestLoserMergeReaderErrorReleasesFrames corrupts a presorted run so the
// merge hits a non-EOF reader error mid-stream, and checks the error path
// closes every cursor and the half-written output: no pooled frame and no
// budget block may stay live after Close.
func TestLoserMergeReaderErrorReleasesFrames(t *testing.T) {
	env := newEnv(t, 64, 16)
	s, err := New(env, em.CatMergeRun, bytesCompare, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	good := writePresortedRun(t, env, [][]byte{[]byte("aaa"), []byte("mmm"), []byte("zzz")})
	// The corrupt run yields one clean record, then a length prefix far
	// beyond maxRecordLen: the reader fails with a non-EOF error only
	// after the merge is underway.
	corrupt := em.NewStream(env.Dev, em.CatMergeRun)
	w, err := corrupt.NewWriter(nil)
	if err != nil {
		t.Fatal(err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], 3)
	if _, err := w.Write(lenBuf[:n]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("bbb")); err != nil {
		t.Fatal(err)
	}
	n = binary.PutUvarint(lenBuf[:], uint64(maxRecordLen)+1)
	if _, err := w.Write(lenBuf[:n]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if err := s.AddPresortedRun(good); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPresortedRun(corrupt); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sort(); err == nil {
		t.Fatal("merge over a corrupt run succeeded")
	} else if !strings.Contains(err.Error(), "corrupt run") {
		t.Fatalf("unexpected error: %v", err)
	}
	s.Close()
	if live := env.Dev.Frames().Live(); live != 0 {
		t.Errorf("error path leaked %d pooled frames", live)
	}
	if inUse := env.Budget.InUse(); inUse != 0 {
		t.Errorf("error path leaked %d budget blocks", inUse)
	}
}
