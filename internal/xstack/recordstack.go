package xstack

import (
	"fmt"

	"nexsort/internal/em"
)

// RecordStack is an external-memory stack of fixed-size records: the shape
// of NEXSORT's path stack (data-stack offsets, optionally augmented with
// ordering-key context) and output location stack ((run, offset) pairs).
// Records are block-aligned — each block holds floor(blockSize/recordSize)
// records — so a record is always read or written with exactly one block
// touch, matching the layout assumed by the paper's paging lemmas.
type RecordStack struct {
	p        *pager
	recSize  int
	perBlock int
	n        int64 // records on the stack
}

// NewRecordStack creates a stack of recSize-byte records on dev charging
// category cat, with `resident` blocks granted from budget. The paper's
// analysis assumes two resident blocks for the path stack (Lemma 4.11) and
// one for the output location stack (Lemma 4.13).
func NewRecordStack(dev *em.Device, cat em.Category, budget *em.Budget, resident, recSize int) (*RecordStack, error) {
	if recSize <= 0 || recSize > dev.BlockSize() {
		return nil, fmt.Errorf("xstack: record size %d outside (0,%d]", recSize, dev.BlockSize())
	}
	p, err := newPager(dev, cat, budget, resident)
	if err != nil {
		return nil, err
	}
	return &RecordStack{p: p, recSize: recSize, perBlock: dev.BlockSize() / recSize}, nil
}

// Len returns the number of records on the stack.
func (s *RecordStack) Len() int64 { return s.n }

// block and slot locate record i.
func (s *RecordStack) locate(i int64) (block int, slotOff int) {
	return int(i / int64(s.perBlock)), int(i%int64(s.perBlock)) * s.recSize
}

// Push appends rec, which must be exactly the record size.
func (s *RecordStack) Push(rec []byte) error {
	if len(rec) != s.recSize {
		return fmt.Errorf("xstack: push of %d bytes, record size is %d", len(rec), s.recSize)
	}
	b, off := s.locate(s.n)
	if b > s.p.topBlock() {
		if err := s.p.grow(); err != nil {
			return err
		}
	}
	copy(s.p.buf(b)[off:], rec)
	s.p.markDirty(b)
	s.n++
	return nil
}

// Pop removes the top record into dst (which must be record-sized), paging
// in at most one block if the record lives below the resident window.
func (s *RecordStack) Pop(dst []byte) error {
	if err := s.Peek(dst); err != nil {
		return err
	}
	s.n--
	if s.n == 0 {
		s.p.reset()
		return nil
	}
	b, _ := s.locate(s.n - 1)
	return s.p.shrinkTo(b)
}

// Peek copies the top record into dst without removing it.
func (s *RecordStack) Peek(dst []byte) error {
	if len(dst) != s.recSize {
		return fmt.Errorf("xstack: peek into %d bytes, record size is %d", len(dst), s.recSize)
	}
	if s.n == 0 {
		return ErrEmpty
	}
	b, off := s.locate(s.n - 1)
	if !s.p.isResident(b) {
		// No-prefetch page-in: bring the block holding the top record
		// back into the window before touching it.
		if err := s.p.shrinkTo(b); err != nil {
			return err
		}
	}
	copy(dst, s.p.buf(b)[off:off+s.recSize])
	return nil
}

// ReplaceTop overwrites the top record in place. It is used by the complex
// ordering-criteria extension (Section 3.2), which updates pending key
// expressions on the path stack as the subtree streams by.
func (s *RecordStack) ReplaceTop(rec []byte) error {
	if len(rec) != s.recSize {
		return fmt.Errorf("xstack: replace with %d bytes, record size is %d", len(rec), s.recSize)
	}
	if s.n == 0 {
		return ErrEmpty
	}
	b, off := s.locate(s.n - 1)
	if !s.p.isResident(b) {
		if err := s.p.shrinkTo(b); err != nil {
			return err
		}
	}
	copy(s.p.buf(b)[off:], rec)
	s.p.markDirty(b)
	return nil
}

// Close releases the resident-window grant. The stack is unusable after.
func (s *RecordStack) Close() { s.p.close() }
