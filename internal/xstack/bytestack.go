package xstack

import (
	"fmt"
	"io"

	"nexsort/internal/em"
)

// ByteStack is an external-memory stack of bytes: NEXSORT's data stack.
// Callers push variable-length serialized XML units, record interesting
// offsets (on the path stack), and later either read a suffix of the stack
// sequentially (a complete subtree being extracted for sorting) or truncate
// back to a recorded offset. Individual byte pops are never needed, so the
// API is Push / Size / ReadRange / Truncate.
type ByteStack struct {
	p    *pager
	size int64
}

// NewByteStack creates a data stack over dev charging category cat, with
// `resident` blocks of main memory granted from budget. Section 3.1 assumes
// at least one block for the data stack.
func NewByteStack(dev *em.Device, cat em.Category, budget *em.Budget, resident int) (*ByteStack, error) {
	p, err := newPager(dev, cat, budget, resident)
	if err != nil {
		return nil, err
	}
	return &ByteStack{p: p}, nil
}

// Size returns the stack height in bytes. Offsets returned by Size before a
// push identify that push's start location, the quantity stored on the path
// stack.
func (s *ByteStack) Size() int64 { return s.size }

// Push appends data to the top of the stack.
func (s *ByteStack) Push(data []byte) error {
	bs := int64(s.p.blockSize())
	for len(data) > 0 {
		b := int(s.size / bs)
		if b > s.p.topBlock() {
			if err := s.p.grow(); err != nil {
				return err
			}
		}
		off := int(s.size % bs)
		n := copy(s.p.buf(b)[off:], data)
		s.p.markDirty(b)
		data = data[n:]
		s.size += int64(n)
	}
	return nil
}

// Truncate discards all bytes at or above offset n, making n the new top.
// Truncation writes nothing; if the new top lies below the resident window,
// the block containing it is paged in (one read) so subsequent pushes can
// continue in place.
func (s *ByteStack) Truncate(n int64) error {
	if n < 0 || n > s.size {
		return fmt.Errorf("xstack: truncate to %d outside [0,%d]", n, s.size)
	}
	s.size = n
	if n == 0 {
		s.p.reset()
		return nil
	}
	bs := int64(s.p.blockSize())
	b := int(n / bs)
	if n%bs == 0 {
		// The new top sits exactly at a block boundary; the next push
		// starts a new block, so keep the previous block as top.
		b--
	}
	return s.p.shrinkTo(b)
}

// ReadRange returns a reader over bytes [off, Size()). Resident blocks are
// served from memory for free; evicted blocks cost one charged read each.
// The stack must not be mutated while the reader is in use. The reader
// borrows one block of main memory from budget until Close.
func (s *ByteStack) ReadRange(budget *em.Budget, off int64) (*RangeReader, error) {
	if off < 0 || off > s.size {
		return nil, fmt.Errorf("xstack: read range start %d outside [0,%d]", off, s.size)
	}
	if budget != nil {
		if err := budget.Grant(1); err != nil {
			return nil, err
		}
	}
	frame := s.p.frames.Acquire()
	return &RangeReader{
		s:      s,
		budget: budget,
		frame:  frame,
		buf:    frame.Bytes(),
		cur:    -1,
		pos:    off,
		end:    s.size,
	}, nil
}

// SetResident resizes the resident window (see pager.setResident): the
// grant delta is settled with the stack's budget, and shrinking evicts the
// oldest resident blocks.
func (s *ByteStack) SetResident(n int) error { return s.p.setResident(n) }

// Resident returns the current window capacity in blocks.
func (s *ByteStack) Resident() int { return s.p.resident }

// Close releases the resident-window grant. The stack is unusable after.
func (s *ByteStack) Close() { s.p.close() }

// RangeReader streams a suffix of a ByteStack. It implements io.Reader and
// io.ByteReader.
type RangeReader struct {
	s      *ByteStack
	budget *em.Budget
	frame  em.Frame
	buf    []byte
	cur    int // stack block index currently in buf; -1 if none
	pos    int64
	end    int64
	closed bool
}

// Read implements io.Reader.
func (r *RangeReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("xstack: read from closed RangeReader")
	}
	if r.pos >= r.end {
		return 0, io.EOF
	}
	bs := int64(len(r.buf))
	b := int(r.pos / bs)
	if b != r.cur {
		if err := r.s.p.readInto(b, r.buf); err != nil {
			return 0, err
		}
		r.cur = b
	}
	inBlock := int(r.pos % bs)
	avail := int(min64(bs, r.end-int64(b)*bs)) - inBlock
	n := copy(p, r.buf[inBlock:inBlock+avail])
	r.pos += int64(n)
	return n, nil
}

// ReadByte implements io.ByteReader.
func (r *RangeReader) ReadByte() (byte, error) {
	var b [1]byte
	n, err := r.Read(b[:])
	if n == 1 {
		return b[0], nil
	}
	if err == nil {
		err = io.EOF
	}
	return 0, err
}

// Close recycles the reader's buffer frame and releases its grant.
func (r *RangeReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.s.p.frames.Release(r.frame)
	r.buf = nil
	if r.budget != nil {
		r.budget.Release(1)
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
