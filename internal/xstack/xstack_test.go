package xstack

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"nexsort/internal/em"
)

func newDev(t *testing.T, blockSize int) (*em.Device, *em.Stats) {
	t.Helper()
	stats := em.NewStats()
	return em.NewDevice(em.NewMemBackend(), blockSize, stats), stats
}

func TestByteStackPushReadTruncate(t *testing.T) {
	dev, _ := newDev(t, 32)
	s, err := NewByteStack(dev, em.CatDataStack, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ref []byte
	push := func(p []byte) {
		if err := s.Push(p); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, p...)
	}
	push([]byte("first-unit|"))
	mark := s.Size()
	push([]byte("second-unit-is-much-longer-than-one-block|"))
	push([]byte("third|"))

	if s.Size() != int64(len(ref)) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(ref))
	}

	r, err := s.ReadRange(nil, mark)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(got, ref[mark:]) {
		t.Errorf("ReadRange = %q, want %q", got, ref[mark:])
	}

	if err := s.Truncate(mark); err != nil {
		t.Fatal(err)
	}
	ref = ref[:mark]
	push([]byte("replacement"))

	r, _ = s.ReadRange(nil, 0)
	got, _ = io.ReadAll(r)
	r.Close()
	if !bytes.Equal(got, ref) {
		t.Errorf("after truncate+push: %q, want %q", got, ref)
	}
}

func TestByteStackTruncateToZero(t *testing.T) {
	dev, stats := newDev(t, 16)
	s, _ := NewByteStack(dev, em.CatDataStack, nil, 1)
	defer s.Close()
	s.Push(make([]byte, 100)) // spans several blocks, evicting most
	if err := s.Truncate(0); err != nil {
		t.Fatal(err)
	}
	reads := stats.Reads(em.CatDataStack)
	if reads != 0 {
		t.Errorf("truncate-to-zero paged in %d blocks, want 0", reads)
	}
	s.Push([]byte("fresh"))
	r, _ := s.ReadRange(nil, 0)
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "fresh" {
		t.Errorf("after reset: %q", got)
	}
}

func TestByteStackBounds(t *testing.T) {
	dev, _ := newDev(t, 16)
	s, _ := NewByteStack(dev, em.CatDataStack, nil, 1)
	defer s.Close()
	s.Push([]byte("abc"))
	if err := s.Truncate(4); err == nil {
		t.Error("truncate beyond size should fail")
	}
	if err := s.Truncate(-1); err == nil {
		t.Error("negative truncate should fail")
	}
	if _, err := s.ReadRange(nil, 4); err == nil {
		t.Error("out-of-range read should fail")
	}
}

func TestByteStackPagingCounts(t *testing.T) {
	// With a 1-block window and block size 16, pushing 5 blocks' worth
	// evicts 4 dirty blocks; reading it all back pages in the 4 evicted
	// blocks (the resident one is free).
	dev, stats := newDev(t, 16)
	s, _ := NewByteStack(dev, em.CatDataStack, nil, 1)
	defer s.Close()
	s.Push(make([]byte, 80))
	if w := stats.Writes(em.CatDataStack); w != 4 {
		t.Errorf("evict writes = %d, want 4", w)
	}
	r, _ := s.ReadRange(nil, 0)
	io.ReadAll(r)
	r.Close()
	if rd := stats.Reads(em.CatDataStack); rd != 4 {
		t.Errorf("range reads = %d, want 4", rd)
	}
}

func TestByteStackCleanEvictionNotRewritten(t *testing.T) {
	// A block paged in by a truncate and then evicted again untouched must
	// not be written a second time.
	dev, stats := newDev(t, 16)
	s, _ := NewByteStack(dev, em.CatDataStack, nil, 1)
	defer s.Close()
	s.Push(make([]byte, 40)) // blocks 0,1 evicted dirty; block 2 resident
	w0 := stats.Writes(em.CatDataStack)
	if err := s.Truncate(20); err != nil { // pages block 1 back in
		t.Fatal(err)
	}
	r0 := stats.Reads(em.CatDataStack)
	if r0 != 1 {
		t.Fatalf("truncate paged in %d blocks, want 1", r0)
	}
	// Push enough to evict block 1 again; it is dirty now (push landed in
	// it), so one write. Then block 2 is fresh.
	s.Push(make([]byte, 20))
	if w := stats.Writes(em.CatDataStack) - w0; w != 1 {
		t.Errorf("re-eviction wrote %d blocks, want 1 (dirty)", w)
	}
}

func TestByteStackBudget(t *testing.T) {
	dev, _ := newDev(t, 16)
	budget := em.NewBudget(5)
	s, err := NewByteStack(dev, em.CatDataStack, budget, 2)
	if err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 2 {
		t.Errorf("InUse = %d, want 2", budget.InUse())
	}
	s.Push(make([]byte, 100))
	r, err := s.ReadRange(budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 3 {
		t.Errorf("InUse with reader = %d, want 3", budget.InUse())
	}
	r.Close()
	s.Close()
	if budget.InUse() != 0 {
		t.Errorf("leaked %d blocks", budget.InUse())
	}
	if _, err := NewByteStack(dev, em.CatDataStack, em.NewBudget(1), 2); !errors.Is(err, em.ErrBudgetExceeded) {
		t.Errorf("want budget error, got %v", err)
	}
}

func TestRecordStackPushPop(t *testing.T) {
	dev, _ := newDev(t, 64)
	s, err := NewRecordStack(dev, em.CatPathStack, nil, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec := make([]byte, 8)
	for i := 0; i < 100; i++ {
		binary.LittleEndian.PutUint64(rec, uint64(i))
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 99; i >= 0; i-- {
		if err := s.Pop(rec); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(rec); got != uint64(i) {
			t.Fatalf("pop %d: got %d", i, got)
		}
	}
	if err := s.Pop(rec); !errors.Is(err, ErrEmpty) {
		t.Errorf("pop empty = %v, want ErrEmpty", err)
	}
	if err := s.Peek(rec); !errors.Is(err, ErrEmpty) {
		t.Errorf("peek empty = %v, want ErrEmpty", err)
	}
}

func TestRecordStackPeekReplace(t *testing.T) {
	dev, _ := newDev(t, 32)
	s, _ := NewRecordStack(dev, em.CatPathStack, nil, 2, 4)
	defer s.Close()
	s.Push([]byte("aaaa"))
	s.Push([]byte("bbbb"))
	rec := make([]byte, 4)
	if err := s.Peek(rec); err != nil || string(rec) != "bbbb" {
		t.Fatalf("peek = %q, %v", rec, err)
	}
	if err := s.ReplaceTop([]byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	s.Pop(rec)
	if string(rec) != "BBBB" {
		t.Errorf("after replace, pop = %q", rec)
	}
	s.Peek(rec)
	if string(rec) != "aaaa" {
		t.Errorf("second record = %q", rec)
	}
}

func TestRecordStackValidation(t *testing.T) {
	dev, _ := newDev(t, 32)
	if _, err := NewRecordStack(dev, em.CatPathStack, nil, 2, 0); err == nil {
		t.Error("zero record size should fail")
	}
	if _, err := NewRecordStack(dev, em.CatPathStack, nil, 2, 33); err == nil {
		t.Error("record larger than block should fail")
	}
	if _, err := NewRecordStack(dev, em.CatPathStack, nil, 0, 4); err == nil {
		t.Error("zero resident window should fail")
	}
	s, _ := NewRecordStack(dev, em.CatPathStack, nil, 1, 4)
	defer s.Close()
	if err := s.Push([]byte("toolong!")); err == nil {
		t.Error("wrong-size push should fail")
	}
	if err := s.Pop(make([]byte, 3)); err == nil {
		t.Error("wrong-size pop should fail")
	}
}

// TestRecordStackFringePaging verifies the Lemma 4.11 behaviour: with two
// resident blocks, popping back into the previous block after a short
// excursion costs no I/O; a page-in happens only when more than two blocks
// were pushed above the block being returned to.
func TestRecordStackFringePaging(t *testing.T) {
	dev, stats := newDev(t, 32) // 4 records of 8 bytes per block
	s, _ := NewRecordStack(dev, em.CatPathStack, nil, 2, 8)
	defer s.Close()
	rec := make([]byte, 8)

	// Push 6 records: blocks 0 (recs 0-3) and 1 (recs 4-5) resident.
	for i := 0; i < 6; i++ {
		s.Push(rec)
	}
	if got := stats.IOs(em.CatPathStack); got != 0 {
		t.Fatalf("setup IOs = %d", got)
	}
	// Pop back into block 0: both blocks resident, no I/O.
	for i := 0; i < 3; i++ {
		s.Pop(rec)
	}
	if got := stats.IOs(em.CatPathStack); got != 0 {
		t.Errorf("short excursion cost %d IOs, want 0", got)
	}
	// Deep excursion: push 10 records (through block 3), evicting block 0.
	for i := 0; i < 10; i++ {
		s.Push(rec)
	}
	if w := stats.Writes(em.CatPathStack); w != 2 {
		t.Errorf("deep push evicted %d blocks, want 2", w)
	}
	// Pop all the way down: blocks 1 and 0 must be paged back in.
	for s.Len() > 0 {
		s.Pop(rec)
	}
	if r := stats.Reads(em.CatPathStack); r != 2 {
		t.Errorf("deep pop paged in %d blocks, want 2", r)
	}
}

// Property: ByteStack behaves like an in-memory byte slice under an
// arbitrary sequence of pushes, truncates and range reads.
func TestByteStackQuick(t *testing.T) {
	type op struct {
		Kind byte
		Arg  uint16
	}
	f := func(ops []op, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := em.NewDevice(em.NewMemBackend(), 24, nil)
		s, err := NewByteStack(dev, em.CatDataStack, nil, 1+rng.Intn(3))
		if err != nil {
			return false
		}
		defer s.Close()
		var ref []byte
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // push
				p := make([]byte, int(o.Arg)%97)
				rng.Read(p)
				if err := s.Push(p); err != nil {
					return false
				}
				ref = append(ref, p...)
			case 1: // truncate
				if len(ref) == 0 {
					continue
				}
				n := int(o.Arg) % (len(ref) + 1)
				if err := s.Truncate(int64(n)); err != nil {
					return false
				}
				ref = ref[:n]
			case 2: // read range
				off := 0
				if len(ref) > 0 {
					off = int(o.Arg) % (len(ref) + 1)
				}
				r, err := s.ReadRange(nil, int64(off))
				if err != nil {
					return false
				}
				got, err := io.ReadAll(r)
				r.Close()
				if err != nil || !bytes.Equal(got, ref[off:]) {
					return false
				}
			}
		}
		return s.Size() == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: RecordStack is LIFO-equivalent to an in-memory slice of records
// under random push/pop interleavings and tiny windows.
func TestRecordStackQuick(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := em.NewDevice(em.NewMemBackend(), 16, nil)
		s, err := NewRecordStack(dev, em.CatOutputStack, nil, 1, 6)
		if err != nil {
			return false
		}
		defer s.Close()
		var ref [][]byte
		rec := make([]byte, 6)
		for _, push := range ops {
			if push || len(ref) == 0 {
				p := make([]byte, 6)
				rng.Read(p)
				if err := s.Push(p); err != nil {
					return false
				}
				ref = append(ref, p)
			} else {
				if err := s.Pop(rec); err != nil {
					return false
				}
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if !bytes.Equal(rec, want) {
					return false
				}
			}
		}
		return s.Len() == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestByteStackSetResident(t *testing.T) {
	dev, stats := newDev(t, 16)
	budget := em.NewBudget(10)
	s, err := NewByteStack(dev, em.CatDataStack, budget, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Resident() != 4 || budget.InUse() != 4 {
		t.Fatalf("initial residency %d, grant %d", s.Resident(), budget.InUse())
	}
	payload := make([]byte, 60) // ~4 blocks: all resident, no eviction
	for i := range payload {
		payload[i] = byte(i)
	}
	s.Push(payload)
	if w := stats.Writes(em.CatDataStack); w != 0 {
		t.Fatalf("windowed pushes evicted %d blocks", w)
	}

	// Shrinking to 1 evicts the three older blocks (dirty -> written).
	if err := s.SetResident(1); err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 1 {
		t.Errorf("grant after shrink = %d", budget.InUse())
	}
	if w := stats.Writes(em.CatDataStack); w != 3 {
		t.Errorf("shrink evicted %d blocks, want 3", w)
	}

	// Growing back is free and re-grants.
	if err := s.SetResident(3); err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 3 {
		t.Errorf("grant after grow = %d", budget.InUse())
	}

	// Contents intact either way.
	r, _ := s.ReadRange(nil, 0)
	got, _ := io.ReadAll(r)
	r.Close()
	if !bytes.Equal(got, payload) {
		t.Error("contents corrupted across residency changes")
	}

	// Over-budget grow fails cleanly.
	if err := s.SetResident(11); !errors.Is(err, em.ErrBudgetExceeded) {
		t.Errorf("over-budget grow: %v", err)
	}
	if err := s.SetResident(0); err == nil {
		t.Error("zero residency should fail")
	}
}

// TestByteStackWriteBehind drives an eviction-heavy push/truncate/read
// workload through a device with a write-behind pipeline and checks it
// against the identical workload on a synchronous device: same final
// bytes, same logical ledger (write-behind charges the write at
// submission, so eviction counts must not move), and no live frames
// after the stack and device unwind.
func TestByteStackWriteBehind(t *testing.T) {
	run := func(ra, wb int) ([]byte, map[string]em.IOCount) {
		t.Helper()
		stats := em.NewStats()
		dev := em.NewDevice(em.NewMemBackend(), 32, stats)
		if ra > 0 || wb > 0 {
			dev.EnableAsync(ra, wb)
		}
		s, err := NewByteStack(dev, em.CatDataStack, nil, 2)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(77))
		var ref []byte
		for i := 0; i < 300; i++ {
			chunk := make([]byte, 1+rng.Intn(50))
			for j := range chunk {
				chunk[j] = byte('a' + (i+j)%26)
			}
			if err := s.Push(chunk); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, chunk...)
			switch {
			case i%23 == 11:
				// Truncating into an evicted region pages blocks back in
				// while earlier flushes may still be in flight.
				cut := int64(len(ref)) * 3 / 4
				if err := s.Truncate(cut); err != nil {
					t.Fatal(err)
				}
				ref = ref[:cut]
			case i%37 == 5:
				// Read the full contents mid-stream: every evicted block is
				// paged back through the pending-flush coherence path.
				r, err := s.ReadRange(nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				got, err := io.ReadAll(r)
				if err != nil {
					t.Fatal(err)
				}
				r.Close()
				if !bytes.Equal(got, ref) {
					t.Fatalf("ra=%d wb=%d: mid-stream contents diverged at i=%d", ra, wb, i)
				}
			}
		}

		r, err := s.ReadRange(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		s.Close()
		if err := dev.Close(); err != nil {
			t.Fatal(err)
		}
		if live := dev.Frames().Live(); live != 0 {
			t.Fatalf("ra=%d wb=%d: %d frames live after close", ra, wb, live)
		}
		return got, stats.Snapshot()
	}

	wantBytes, wantLedger := run(0, 0)
	for _, d := range [][2]int{{0, 1}, {0, 3}, {2, 2}} {
		got, ledger := run(d[0], d[1])
		if !bytes.Equal(got, wantBytes) {
			t.Errorf("ra=%d wb=%d: final contents differ from synchronous run", d[0], d[1])
		}
		w, g := wantLedger["data-stack"], ledger["data-stack"]
		g.PrefetchHits, g.PrefetchWasted, g.FlushStalls = 0, 0, 0
		g.PhysReadBytes, g.PhysWriteBytes = w.PhysReadBytes, w.PhysWriteBytes
		if g != w {
			t.Errorf("ra=%d wb=%d: logical ledger moved: sync %+v, async %+v", d[0], d[1], w, g)
		}
	}
}

// TestRecordStackWriteBehind exercises the record-stack fringe (push, pop,
// peek, replace) over a write-behind device: pops page evicted blocks back
// in while their eviction flushes may still be pending.
func TestRecordStackWriteBehind(t *testing.T) {
	const recSize = 8
	run := func(wb int) ([]byte, int64) {
		t.Helper()
		stats := em.NewStats()
		dev := em.NewDevice(em.NewMemBackend(), 32, stats)
		if wb > 0 {
			dev.EnableAsync(0, wb)
		}
		s, err := NewRecordStack(dev, em.CatPathStack, nil, 2, recSize)
		if err != nil {
			t.Fatal(err)
		}

		var popped []byte
		rec := make([]byte, recSize)
		for i := 0; i < 400; i++ {
			binary.LittleEndian.PutUint64(rec, uint64(i))
			if err := s.Push(rec); err != nil {
				t.Fatal(err)
			}
			if i%3 == 2 {
				// Pop across block boundaries: the fringe walks back into
				// evicted (possibly still-flushing) blocks.
				out := make([]byte, recSize)
				if err := s.Pop(out); err != nil {
					t.Fatal(err)
				}
				popped = append(popped, out...)
			}
		}
		for s.Len() > 0 {
			out := make([]byte, recSize)
			if err := s.Pop(out); err != nil {
				t.Fatal(err)
			}
			popped = append(popped, out...)
		}
		n := s.Len()
		s.Close()
		if err := dev.Close(); err != nil {
			t.Fatal(err)
		}
		if live := dev.Frames().Live(); live != 0 {
			t.Fatalf("wb=%d: %d frames live after close", wb, live)
		}
		_ = stats
		return popped, n
	}

	wantPopped, wantLen := run(0)
	for _, wb := range []int{1, 4} {
		popped, n := run(wb)
		if n != wantLen {
			t.Errorf("wb=%d: final length %d, want %d", wb, n, wantLen)
		}
		if !bytes.Equal(popped, wantPopped) {
			t.Errorf("wb=%d: pop sequence differs from synchronous run", wb)
		}
	}
}
