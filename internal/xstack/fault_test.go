package xstack

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nexsort/internal/em"
)

// Error-path coverage for the pagers: when the scratch device faults
// mid-operation, Push/Pop/Peek/ReadRange must surface the error — not
// panic — and Close must still return every granted budget block.

var errDisk = errors.New("xstack_test: injected device error")

// faultDev builds a device over a FaultBackend so tests can arm one-shot
// read or write failures.
func faultDev(blockSize int) (*em.Device, *em.FaultBackend) {
	fb := em.NewFaultBackend(em.NewMemBackend())
	return em.NewDevice(fb, blockSize, em.NewStats()), fb
}

func TestByteStackPushWriteFault(t *testing.T) {
	dev, fb := faultDev(32)
	budget := em.NewBudget(8)
	s, err := NewByteStack(dev, em.CatDataStack, budget, 1)
	if err != nil {
		t.Fatal(err)
	}

	fb.FailWriteAfter(1, errDisk) // first eviction write fails
	var pushErr error
	for i := 0; i < 16 && pushErr == nil; i++ {
		pushErr = s.Push(bytes.Repeat([]byte{byte('a' + i)}, 16))
	}
	if !errors.Is(pushErr, errDisk) {
		t.Fatalf("Push under write fault = %v, want %v", pushErr, errDisk)
	}

	s.Close()
	if n := budget.InUse(); n != 0 {
		t.Errorf("budget: %d blocks still granted after Close", n)
	}
}

func TestByteStackReadRangeReadFault(t *testing.T) {
	dev, fb := faultDev(32)
	budget := em.NewBudget(8)
	s, err := NewByteStack(dev, em.CatDataStack, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill several blocks so the early ones are evicted to the device.
	for i := 0; i < 8; i++ {
		if err := s.Push(bytes.Repeat([]byte{byte('a' + i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}

	fb.FailReadAfter(1, errDisk) // first page-in fails
	r, err := s.ReadRange(budget, 0)
	if err == nil {
		var buf [16]byte
		_, err = r.Read(buf[:])
		r.Close()
	}
	if !errors.Is(err, errDisk) {
		t.Fatalf("ReadRange under read fault = %v, want %v", err, errDisk)
	}

	s.Close()
	if n := budget.InUse(); n != 0 {
		t.Errorf("budget: %d blocks still granted after Close", n)
	}
}

func TestRecordStackPopPageInFault(t *testing.T) {
	const recSize = 16
	dev, fb := faultDev(32)
	budget := em.NewBudget(8)
	s, err := NewRecordStack(dev, em.CatPathStack, budget, 1, recSize)
	if err != nil {
		t.Fatal(err)
	}
	// Two records per block; push enough that popping back crosses an
	// evicted block boundary and needs a page-in.
	rec := make([]byte, recSize)
	for i := 0; i < 8; i++ {
		rec[0] = byte(i)
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}

	fb.FailReadAfter(1, errDisk)
	var popErr error
	for i := 0; i < 8 && popErr == nil; i++ {
		popErr = s.Pop(rec)
	}
	if !errors.Is(popErr, errDisk) {
		t.Fatalf("Pop under read fault = %v, want %v", popErr, errDisk)
	}

	s.Close()
	if n := budget.InUse(); n != 0 {
		t.Errorf("budget: %d blocks still granted after Close", n)
	}
}

// TestStacksUnderChaos drives both stacks through a deterministic workload
// over a probabilistically faulty device: whatever the injector does, the
// stacks must fail with errors rather than panics, and Close must return
// the full budget.
func TestStacksUnderChaos(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaos := em.NewChaosBackend(em.NewMemBackend(), em.ChaosConfig{
				Seed:               seed,
				ReadTransientProb:  0.1,
				WriteTransientProb: 0.1,
				ReadPermanentProb:  0.05,
				WritePermanentProb: 0.05,
			})
			dev := em.NewDevice(chaos, 32, em.NewStats())
			budget := em.NewBudget(8)

			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("stack op panicked under chaos: %v", r)
				}
				if n := budget.InUse(); n != 0 {
					t.Errorf("budget: %d blocks still granted after Close", n)
				}
			}()

			bs, err := NewByteStack(dev, em.CatDataStack, budget, 2)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := NewRecordStack(dev, em.CatPathStack, budget, 2, 16)
			if err != nil {
				bs.Close()
				t.Fatal(err)
			}
			rec := make([]byte, 16)
			for i := 0; i < 40; i++ {
				bs.Push(bytes.Repeat([]byte{byte(i)}, 24)) // errors allowed, panics not
				rs.Push(rec)
				if i%5 == 4 {
					rs.Pop(rec)
					rs.Peek(rec)
				}
			}
			if r, err := bs.ReadRange(budget, 0); err == nil {
				var buf [64]byte
				for {
					if _, err := r.Read(buf[:]); err != nil {
						break
					}
				}
				r.Close()
			}
			bs.Close()
			rs.Close()
		})
	}
}
