// Package xstack provides the external-memory stacks NEXSORT relies on:
// stacks that keep only a small, fixed window of blocks resident in main
// memory and page the rest to an em.Device on demand.
//
// Section 3.1 of the paper names three such stacks — the data stack, the
// path stack, and the output location stack — and its worst-case analysis
// (Lemmas 4.10, 4.11 and 4.13) assumes a no-prefetch paging policy: a block
// in external memory is paged in only when something on it must actually be
// popped or read. The implementations here follow that policy exactly:
//
//   - a push that overflows the resident window evicts the oldest resident
//     block, writing it to the device only if it is dirty;
//   - a pop or truncate never performs a write, because bytes above the new
//     top are garbage;
//   - a pop that reaches below the resident window pages in exactly the one
//     block holding the new top.
//
// ByteStack stores an unstructured byte sequence and supports range reads —
// that is the data stack, whose entries (serialized XML units) have variable
// length and are consumed wholesale when a subtree is extracted for sorting.
// RecordStack stores fixed-size records — that is the path stack and the
// output location stack. Records never straddle block boundaries: each
// block holds floor(blockSize/recordSize) records, mirroring how TPIE lays
// out fixed-size items.
package xstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nexsort/internal/em"
)

// ErrEmpty is returned when popping or peeking an empty RecordStack.
var ErrEmpty = errors.New("xstack: stack is empty")

// pager manages the resident window shared by both stack kinds. Stack
// blocks are numbered from 0 at the bottom; the window is a contiguous run
// of blocks ending at the current top block.
type pager struct {
	dev      *em.Device
	cat      em.Category
	budget   *em.Budget
	frames   *em.FramePool
	resident int // maximum resident blocks (granted from budget)

	ids    []int64    // device block ID per stack block; -1 until first evict
	bufs   []em.Frame // resident frames, bufs[i] holds stack block wStart+i
	dirty  []bool
	wStart int // stack block index of bufs[0]
	closed bool

	// Write-behind state: dirty evictions are handed to the device's
	// flusher when write-behind is on (em.Config.WriteBehind), and the
	// pager keeps pushing while they drain. The first flush error is
	// latched and returned at the pager's next device-touching operation;
	// close drains all outstanding flushes. Paging a block back in while
	// its flush is still in flight is coherent by construction — the
	// device serves the submitted bytes from its pending mirror.
	flushWG  sync.WaitGroup
	errMu    sync.Mutex
	flushErr error
	errSet   atomic.Bool
}

func newPager(dev *em.Device, cat em.Category, budget *em.Budget, resident int) (*pager, error) {
	if resident < 1 {
		return nil, fmt.Errorf("xstack: resident window must be >= 1, got %d", resident)
	}
	if budget != nil {
		if err := budget.Grant(resident); err != nil {
			return nil, fmt.Errorf("xstack: granting %d resident blocks: %w", resident, err)
		}
	}
	p := &pager{dev: dev, cat: cat, budget: budget, frames: dev.Frames(), resident: resident}
	p.bufs = append(p.bufs, p.frames.Acquire())
	p.dirty = append(p.dirty, false)
	return p, nil
}

func (p *pager) blockSize() int { return p.dev.BlockSize() }

// topBlock returns the stack block index of the last resident buffer.
func (p *pager) topBlock() int { return p.wStart + len(p.bufs) - 1 }

// isResident reports whether stack block b is in the window.
func (p *pager) isResident(b int) bool {
	return b >= p.wStart && b <= p.topBlock()
}

// buf returns the buffer for resident stack block b.
func (p *pager) buf(b int) []byte { return p.bufs[b-p.wStart].Bytes() }

// markDirty flags resident stack block b as modified.
func (p *pager) markDirty(b int) { p.dirty[b-p.wStart] = true }

func (p *pager) deviceID(b int) int64 {
	for len(p.ids) <= b {
		p.ids = append(p.ids, -1)
	}
	if p.ids[b] < 0 {
		p.ids[b] = p.dev.AllocBlock()
	}
	return p.ids[b]
}

// grow extends the window upward by one fresh (zeroed) frame, evicting the
// oldest block first if the window is full.
func (p *pager) grow() error {
	if len(p.bufs) == p.resident {
		if err := p.evictOldest(); err != nil {
			return err
		}
	}
	p.bufs = append(p.bufs, p.frames.Acquire())
	p.dirty = append(p.dirty, false)
	return nil
}

// onFlush is the write-behind completion callback; it runs on the flusher
// goroutine.
func (p *pager) onFlush(err error) {
	if err != nil {
		p.errMu.Lock()
		if p.flushErr == nil {
			p.flushErr = err
			p.errSet.Store(true)
		}
		p.errMu.Unlock()
	}
	p.flushWG.Done()
}

// flushError reports the latched write-behind error, if any.
func (p *pager) flushError() error {
	if !p.errSet.Load() {
		return nil
	}
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.flushErr
}

func (p *pager) evictOldest() error {
	if err := p.flushError(); err != nil {
		return err
	}
	if p.dirty[0] {
		id := p.deviceID(p.wStart)
		p.flushWG.Add(1)
		if p.dev.WriteBlockBehind(p.cat, id, p.bufs[0], p.onFlush) {
			// Frame ownership moved to the flusher; the window just shrinks.
			p.bufs = p.bufs[1:]
			p.dirty = p.dirty[1:]
			p.wStart++
			return nil
		}
		p.flushWG.Done() // write-behind unavailable: evict synchronously
		if err := p.dev.WriteBlock(p.cat, id, p.bufs[0].Bytes()); err != nil {
			return err
		}
	}
	p.frames.Release(p.bufs[0])
	p.bufs = p.bufs[1:]
	p.dirty = p.dirty[1:]
	p.wStart++
	return nil
}

// shrinkTo makes stack block b the top block. Blocks above b are dropped
// without writing (their contents are garbage). If b lies below the window,
// the window collapses to the single block b, paged in from the device.
func (p *pager) shrinkTo(b int) error {
	if b >= p.wStart {
		keep := b - p.wStart + 1
		for _, f := range p.bufs[keep:] {
			p.frames.Release(f)
		}
		p.bufs = p.bufs[:keep]
		p.dirty = p.dirty[:keep]
		return nil
	}
	// Page fault: the new top lives below the window. The oldest resident
	// frame is reused for the paged-in block; the rest are recycled.
	if err := p.flushError(); err != nil {
		return err
	}
	if p.ids == nil || b >= len(p.ids) || p.ids[b] < 0 {
		return fmt.Errorf("xstack: internal error: block %d was never evicted", b)
	}
	if err := p.dev.ReadBlock(p.cat, p.ids[b], p.bufs[0].Bytes()); err != nil {
		return err
	}
	for _, f := range p.bufs[1:] {
		p.frames.Release(f)
	}
	p.bufs = p.bufs[:1]
	p.dirty = p.dirty[:1]
	p.dirty[0] = false
	p.wStart = b
	return nil
}

// setResident changes the window capacity. Shrinking evicts the oldest
// resident blocks (writing dirty ones) until the window fits; growing is
// free. The grant delta is settled with the pager's budget. NEXSORT's
// graceful degeneration uses this to lend the data stack's accumulation
// window to the incomplete-run merge and take it back afterwards.
func (p *pager) setResident(n int) error {
	if n < 1 {
		return fmt.Errorf("xstack: resident window must be >= 1, got %d", n)
	}
	if n > p.resident {
		if p.budget != nil {
			if err := p.budget.Grant(n - p.resident); err != nil {
				return err
			}
		}
		p.resident = n
		return nil
	}
	for len(p.bufs) > n {
		if err := p.evictOldest(); err != nil {
			return err
		}
	}
	if p.budget != nil {
		p.budget.Release(p.resident - n)
	}
	p.resident = n
	return nil
}

// reset collapses the window to a single fresh block 0 without any I/O.
// Used when the stack becomes empty: the old contents are garbage, so
// paging anything back in would be a wasted read.
func (p *pager) reset() {
	for _, f := range p.bufs[1:] {
		p.frames.Release(f)
	}
	p.bufs = p.bufs[:1]
	p.dirty = p.dirty[:1]
	if p.wStart != 0 {
		// The kept frame held some higher stack block; zero it so block 0
		// starts from the same state a fresh frame would have.
		clear(p.bufs[0].Bytes())
		p.wStart = 0
	}
	p.dirty[0] = false
}

// readInto copies stack block b into dst, either from the window (free) or
// from the device (one charged read). dst must be one block long.
func (p *pager) readInto(b int, dst []byte) error {
	if p.isResident(b) {
		copy(dst, p.buf(b))
		return nil
	}
	if err := p.flushError(); err != nil {
		return err
	}
	if p.ids == nil || b >= len(p.ids) || p.ids[b] < 0 {
		return fmt.Errorf("xstack: internal error: reading block %d that was never evicted", b)
	}
	return p.dev.ReadBlock(p.cat, p.ids[b], dst)
}

func (p *pager) close() {
	if p.closed {
		return
	}
	p.closed = true
	// Drain outstanding evictions: their frames are settled back into the
	// pool before the stack's owner runs its leak checks.
	p.flushWG.Wait()
	for _, f := range p.bufs {
		p.frames.Release(f)
	}
	p.bufs = nil
	p.dirty = nil
	if p.budget != nil {
		p.budget.Release(p.resident)
	}
}
