// Package check verifies — in one streaming pass with constant space per
// open element — that an XML document is sorted under a criterion: the
// child list of every non-leaf element (down to an optional depth limit)
// must be ordered by (key, document position). It is the acceptance test
// for every sorter in this repository, the property-test workhorse, and a
// user-facing tool (cmd/xmlcheck) for asking "is this document already
// sorted?" before skipping a sort in a pipeline.
//
// A subtlety: a sorted document's sibling keys must be non-decreasing, but
// the original-position tie-break is not observable from the document
// alone. The checker therefore verifies non-decreasing keys, which is
// exactly the property the single-pass merge relies on. Text nodes carry
// the empty key, so "all text first, then keyed elements" falls out of the
// same rule.
package check

import (
	"fmt"
	"io"

	"nexsort/internal/keys"
	"nexsort/internal/xmltok"
)

// Violation describes the first out-of-order sibling pair found.
type Violation struct {
	// Element is the tag of the out-of-order sibling (or "#text").
	Element string
	// Key and PrevKey are the offending pair: Key < PrevKey.
	Key, PrevKey string
	// Parent is the enclosing element's tag.
	Parent string
	// Level is the enclosing element's level (root = 1).
	Level int
	// Ordinal is the 0-based index of the offending child.
	Ordinal int64
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: child %d (<%s> key %q) of <%s> at level %d sorts before its predecessor (key %q)",
		v.Ordinal, v.Element, v.Key, v.Parent, v.Level, v.PrevKey)
}

// Report summarizes a verification pass.
type Report struct {
	// Elements and TextNodes count the document's nodes.
	Elements  int64
	TextNodes int64
	// Sorted is true when no violation was found.
	Sorted bool
	// Violation is the first offending pair (nil when Sorted).
	Violation *Violation
}

// frame is the per-open-element state: the last sibling key seen and the
// running child count.
type frame struct {
	name     string
	lastKey  string
	children int64
	sawChild bool
}

// Document scans the document from r and verifies sortedness under c down
// to depthLimit (0 = every level). The scan always completes (counting
// nodes) even after a violation, so the report's totals are exact. The
// error return is non-nil only for malformed input, not for unsorted
// documents — inspect Report.Sorted.
func Document(r io.Reader, c *keys.Criterion, depthLimit int) (*Report, error) {
	parser := xmltok.NewParser(r, xmltok.DefaultParserOptions())
	annot := keys.NewAnnotator(c, nil)
	rep := &Report{Sorted: true}

	var stack []frame
	observe := func(name, key string) {
		if len(stack) == 0 {
			return
		}
		top := &stack[len(stack)-1]
		checked := depthLimit == 0 || len(stack) <= depthLimit
		if checked && top.sawChild && rep.Sorted && key < top.lastKey {
			rep.Sorted = false
			rep.Violation = &Violation{
				Element: name,
				Key:     key,
				PrevKey: top.lastKey,
				Parent:  top.name,
				Level:   len(stack),
				Ordinal: top.children,
			}
		}
		top.lastKey = key
		top.sawChild = true
		top.children++
	}

	for {
		tok, err := parser.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if tok, err = annot.Annotate(tok); err != nil {
			return nil, err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			rep.Elements++
			// The key may resolve only at the end tag (path criteria);
			// record a placeholder frame and order-check at the end tag,
			// where the final key is known.
			stack = append(stack, frame{name: tok.Name})
		case xmltok.KindText:
			rep.TextNodes++
			observe("#text", "")
		case xmltok.KindEnd:
			stack = stack[:len(stack)-1]
			observe(tok.Name, tok.Key)
		}
	}
	return rep, nil
}

// MustBeSorted is Document for tests: it returns an error for both
// malformed and unsorted inputs.
func MustBeSorted(r io.Reader, c *keys.Criterion, depthLimit int) error {
	rep, err := Document(r, c, depthLimit)
	if err != nil {
		return err
	}
	if !rep.Sorted {
		return rep.Violation
	}
	return nil
}
