package check

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/keys"
)

func attrCrit() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 12}
}

func TestSortedDocumentPasses(t *testing.T) {
	doc := `<r><a k="1"/><a k="2"><b k="x"/><b k="y"/></a><a k="2"/></r>`
	rep, err := Document(strings.NewReader(doc), attrCrit(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sorted {
		t.Errorf("sorted document flagged: %v", rep.Violation)
	}
	if rep.Elements != 6 {
		t.Errorf("Elements = %d", rep.Elements)
	}
}

func TestUnsortedDocumentCaught(t *testing.T) {
	doc := `<r><a k="2"/><a k="1"/></r>`
	rep, err := Document(strings.NewReader(doc), attrCrit(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sorted {
		t.Fatal("unsorted document passed")
	}
	v := rep.Violation
	if v.Element != "a" || v.Key != "1" || v.PrevKey != "2" || v.Parent != "r" || v.Level != 1 || v.Ordinal != 1 {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), `key "1"`) {
		t.Errorf("error text: %v", v)
	}
}

func TestDeepViolation(t *testing.T) {
	doc := `<r><a k="1"><b k="z"/><b k="a"/></a></r>`
	rep, _ := Document(strings.NewReader(doc), attrCrit(), 0)
	if rep.Sorted {
		t.Fatal("nested violation missed")
	}
	if rep.Violation.Level != 2 || rep.Violation.Parent != "a" {
		t.Errorf("violation = %+v", rep.Violation)
	}
	// With a depth limit of 1, the level-2 list is exempt.
	rep, _ = Document(strings.NewReader(doc), attrCrit(), 1)
	if !rep.Sorted {
		t.Errorf("depth-limited check should pass: %v", rep.Violation)
	}
}

func TestTextOrdering(t *testing.T) {
	// Text sorts with the empty key: before keyed elements is fine,
	// after them is a violation.
	ok := `<r>hello<a k="1"/></r>`
	rep, _ := Document(strings.NewReader(ok), attrCrit(), 0)
	if !rep.Sorted {
		t.Errorf("text-first flagged: %v", rep.Violation)
	}
	bad := `<r><a k="1"/>hello</r>`
	rep, _ = Document(strings.NewReader(bad), attrCrit(), 0)
	if rep.Sorted {
		t.Error("text after keyed element should be a violation")
	}
	if rep.Violation.Element != "#text" {
		t.Errorf("violation = %+v", rep.Violation)
	}
}

func TestPathCriterionEndResolved(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByPath("v")}}, KeyCap: 12}
	sorted := `<r><e><v>a</v></e><e><v>b</v></e></r>`
	if err := MustBeSorted(strings.NewReader(sorted), c, 0); err != nil {
		t.Errorf("sorted path-keyed doc flagged: %v", err)
	}
	unsorted := `<r><e><v>b</v></e><e><v>a</v></e></r>`
	if err := MustBeSorted(strings.NewReader(unsorted), c, 0); err == nil {
		t.Error("unsorted path-keyed doc passed")
	}
}

func TestMalformedInput(t *testing.T) {
	if _, err := Document(strings.NewReader("<a><b></a>"), attrCrit(), 0); err == nil {
		t.Error("malformed input should error")
	}
}

// TestSortersProduceCheckedOutput: every sorter's output passes the
// checker on random documents — and a random unsorted document (almost
// surely) fails it, so the checker is not vacuous.
func TestSortersProduceCheckedOutput(t *testing.T) {
	c := attrCrit()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng)

		env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: 16})
		if err != nil {
			return false
		}
		defer env.Close()
		var nex strings.Builder
		if _, err := core.Sort(env, strings.NewReader(doc), &nex, core.Options{Criterion: c}); err != nil {
			return false
		}
		if err := MustBeSorted(strings.NewReader(nex.String()), c, 0); err != nil {
			return false
		}

		env2, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: 16})
		if err != nil {
			return false
		}
		defer env2.Close()
		var ms strings.Builder
		if _, err := extsort.SortXML(env2, c, strings.NewReader(doc), &ms, extsort.XMLOptions{}); err != nil {
			return false
		}
		return MustBeSorted(strings.NewReader(ms.String()), c, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomDoc(rng *rand.Rand) string {
	var sb strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		sb.WriteString(`<x k="` + string(rune('0'+rng.Intn(10))) + `">`)
		budget--
		for i := rng.Intn(4); i > 0 && depth < 6; i-- {
			budget = emit(depth+1, budget)
		}
		sb.WriteString("</x>")
		return budget
	}
	sb.WriteString("<root>")
	budget := 3 + rng.Intn(60)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</root>")
	return sb.String()
}

func TestReportCompletesAfterViolation(t *testing.T) {
	doc := `<r><a k="9"/><a k="1"/><a k="5"/>tail</r>`
	rep, err := Document(strings.NewReader(doc), attrCrit(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elements != 4 || rep.TextNodes != 1 {
		t.Errorf("counts after violation: %d elements, %d texts", rep.Elements, rep.TextNodes)
	}
	if rep.Sorted {
		t.Error("should be unsorted")
	}
}
