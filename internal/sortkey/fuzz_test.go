package sortkey

import (
	"bytes"
	"testing"
)

// FuzzKeyPathOrder fuzzes the central contract of the package over
// arbitrary byte strings — valid encodings, truncated ones, garbage:
//
//	bytes.Compare(Normalize(a), Normalize(b)) == CompareKeyPath(a, b)
//
// plus the properties the sorter builds on: antisymmetry, reflexivity,
// and that a max-limited key is a true prefix of the full key whose
// zero-padded fixed-size comparison never contradicts the full order.
func FuzzKeyPathOrder(f *testing.F) {
	// Hand-encoded seeds: valid one- and two-component paths, path
	// prefixes, seq ties, the historic truncation hole (header promising
	// more components than present), key-length overruns, seq varints cut
	// mid-byte, and non-minimal varint encodings of the same value.
	seeds := [][]byte{
		{},
		{0x00},
		{1, 0, 0},
		{1, 1, 'A', 0},
		{1, 1, 'A', 1},
		{2, 1, 'A', 0, 1, 'B', 3},
		{2, 1, 'A', 0, 1, 'B', 0x83},
		{1, 3, 'N', 0x00, 'E', 2},
		{2, 1, 'A', 1}, // truncated: header says 2, one present
		{1, 50, 'x'},   // key length overruns the buffer
		{1, 2, 'A', 'C', 0x80},
		{0x80},             // never-terminating header varint
		{0x81, 0x00, 0, 0}, // non-minimal encoding of n=1
		{1, 1, 'a', 0x80, 0x80},
		{1, 1, 'a', 0x80, 0x81},
	}
	for _, a := range seeds {
		for _, b := range seeds {
			f.Add(a, b)
		}
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		got := sign(CompareKeyPath(a, b))
		ka := AppendKeyPathKey(nil, a, 0)
		kb := AppendKeyPathKey(nil, b, 0)
		if want := sign(bytes.Compare(ka, kb)); got != want {
			t.Fatalf("CompareKeyPath(%x, %x) = %d, normalized keys order %d\n ka=%x\n kb=%x",
				a, b, got, want, ka, kb)
		}
		if back := sign(CompareKeyPath(b, a)); back != -got {
			t.Fatalf("antisymmetry: cmp(a,b)=%d cmp(b,a)=%d for a=%x b=%x", got, back, a, b)
		}
		if sign(CompareKeyPath(a, a)) != 0 {
			t.Fatalf("CompareKeyPath(a, a) != 0 for a=%x", a)
		}
		for _, max := range []int{1, 8, 16} {
			pa := AppendKeyPathKey(nil, a, max)
			if !bytes.HasPrefix(ka, pa) {
				t.Fatalf("max=%d key %x is not a prefix of full key %x (rec %x)", max, pa, ka, a)
			}
			// The sorter's inline prefix: clamp to max, zero-pad. When the
			// padded prefixes differ they must agree with the full order.
			pb := AppendKeyPathKey(nil, b, max)
			fixA, fixB := make([]byte, max), make([]byte, max)
			copy(fixA, pa)
			copy(fixB, pb)
			if c := sign(bytes.Compare(fixA, fixB)); c != 0 && c != got {
				t.Fatalf("max=%d padded prefixes order %d but records order %d (a=%x b=%x)",
					max, c, got, a, b)
			}
		}
	})
}

// FuzzKeySeqOrder checks the same normalization contract for the
// (key, seq)-headed child-record format.
func FuzzKeySeqOrder(f *testing.F) {
	seeds := [][]byte{
		{},
		{0, 0},
		{1, 'A', 0, 'p', 'a', 'y', 'l', 'o', 'a', 'd'},
		{1, 'A', 1},
		{2, 'A', 0x00, 3},
		{9, 'x'},       // key overrun
		{1, 'A'},       // seq missing
		{0x80},         // never-terminating key length
		{1, 'A', 0x80}, // seq cut mid-varint
	}
	for _, a := range seeds {
		for _, b := range seeds {
			f.Add(a, b)
		}
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		got := sign(CompareKeySeq(a, b))
		ka := AppendKeySeqKey(nil, a, 0)
		kb := AppendKeySeqKey(nil, b, 0)
		if want := sign(bytes.Compare(ka, kb)); got != want {
			t.Fatalf("CompareKeySeq(%x, %x) = %d, normalized keys order %d", a, b, got, want)
		}
		if back := sign(CompareKeySeq(b, a)); back != -got {
			t.Fatalf("antisymmetry: cmp(a,b)=%d cmp(b,a)=%d for a=%x b=%x", got, back, a, b)
		}
	})
}
