package sortkey

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// mergeInts drains k sorted slices through a LoserTree, returning the
// merged sequence and the tree so tests can inspect comparison counts.
// Exhausted leaves order after live ones, ties by leaf index — the same
// discipline the external sorter's merge uses.
func mergeInts(runs [][]int) ([]int, *LoserTree) {
	heads := make([]int, len(runs))
	exhausted := make([]bool, len(runs))
	for i, r := range runs {
		if len(r) == 0 {
			exhausted[i] = true
		}
	}
	less := func(a, b int32) bool {
		if exhausted[a] != exhausted[b] {
			return !exhausted[a]
		}
		if exhausted[a] {
			return a < b
		}
		va, vb := runs[a][heads[a]], runs[b][heads[b]]
		if va != vb {
			return va < vb
		}
		return a < b
	}
	t := NewLoserTree(len(runs), less)
	var out []int
	for {
		w := t.Winner()
		if exhausted[w] {
			return out, t
		}
		out = append(out, runs[w][heads[w]])
		heads[w]++
		if heads[w] == len(runs[w]) {
			exhausted[w] = true
		}
		t.Fix()
	}
}

func TestLoserTreeMergesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 33} {
		runs := make([][]int, k)
		var want []int
		for i := range runs {
			n := rng.Intn(40)
			for j := 0; j < n; j++ {
				runs[i] = append(runs[i], rng.Intn(50)) // heavy duplicates
			}
			sort.Ints(runs[i])
			want = append(want, runs[i]...)
		}
		sort.Ints(want)
		got, tree := mergeInts(runs)
		if len(got) != len(want) {
			t.Fatalf("k=%d: merged %d values, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: value %d = %d, want %d", k, i, got[i], want[i])
			}
		}
		// Comparison bound: k-1 to build, ≤ ⌈log₂k⌉ per pop, with one
		// final pop discovering exhaustion per leaf.
		n := int64(len(want))
		depth := int64(math.Ceil(math.Log2(float64(k))))
		if k == 1 {
			depth = 0
		}
		bound := int64(k-1) + (n+int64(k))*depth
		if c := tree.Comparisons(); c > bound {
			t.Errorf("k=%d n=%d: %d comparisons exceed the %d bound", k, n, c, bound)
		}
	}
}

func TestLoserTreeEmptyAndSingleton(t *testing.T) {
	got, _ := mergeInts([][]int{{}, {}, {}})
	if len(got) != 0 {
		t.Errorf("all-empty merge produced %v", got)
	}
	got, _ = mergeInts([][]int{{3, 1 + 2, 9}})
	if len(got) != 3 || got[0] != 3 || got[2] != 9 {
		t.Errorf("singleton merge = %v", got)
	}
	got, _ = mergeInts([][]int{{}, {5}, {}})
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("one-live-leaf merge = %v", got)
	}
}

// TestLoserTreeDeterministicTies pins the tie-break: equal values pop in
// leaf-index order, the same rule the run merge uses for byte-identical
// records across runs.
func TestLoserTreeDeterministicTies(t *testing.T) {
	type tagged struct{ val, src int }
	runs := [][]int{{7, 7}, {7}, {7, 7}}
	var order []tagged
	heads := make([]int, len(runs))
	exhausted := make([]bool, len(runs))
	less := func(a, b int32) bool {
		if exhausted[a] != exhausted[b] {
			return !exhausted[a]
		}
		if exhausted[a] {
			return a < b
		}
		va, vb := runs[a][heads[a]], runs[b][heads[b]]
		if va != vb {
			return va < vb
		}
		return a < b
	}
	tree := NewLoserTree(len(runs), less)
	for {
		w := tree.Winner()
		if exhausted[w] {
			break
		}
		order = append(order, tagged{runs[w][heads[w]], int(w)})
		heads[w]++
		if heads[w] == len(runs[w]) {
			exhausted[w] = true
		}
		tree.Fix()
	}
	wantSrc := []int{0, 0, 1, 2, 2}
	for i, o := range order {
		if o.src != wantSrc[i] {
			t.Fatalf("tie order = %v, want sources %v", order, wantSrc)
		}
	}
}
