package sortkey

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// encodePath hand-encodes the keypath wire prefix (path length, then per
// component uvarint key length, key bytes, uvarint seq) without importing
// internal/keypath (which imports this package).
func encodePath(comps ...any) []byte {
	if len(comps)%2 != 0 {
		panic("encodePath: want key/seq pairs")
	}
	var dst []byte
	dst = binary.AppendUvarint(dst, uint64(len(comps)/2))
	for i := 0; i < len(comps); i += 2 {
		key := comps[i].(string)
		seq := comps[i+1].(int)
		dst = binary.AppendUvarint(dst, uint64(len(key)))
		dst = append(dst, key...)
		dst = binary.AppendUvarint(dst, uint64(seq))
	}
	return dst
}

// sign normalizes a comparator result to -1/0/1.
func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// checkAgreement asserts the central kernel property for one pair: the
// comparator, bytes.Compare over full normalized keys, and antisymmetry
// all agree.
func checkAgreement(t *testing.T, cmp func(a, b []byte) int, norm func(dst, rec []byte, max int) []byte, a, b []byte) int {
	t.Helper()
	c := sign(cmp(a, b))
	if rc := sign(cmp(b, a)); rc != -c {
		t.Errorf("antisymmetry broken: cmp(a,b)=%d cmp(b,a)=%d\na=%x\nb=%x", c, rc, a, b)
	}
	na := norm(nil, a, 0)
	nb := norm(nil, b, 0)
	if nc := sign(bytes.Compare(na, nb)); nc != c {
		t.Errorf("normalized keys disagree: cmp=%d bytes.Compare=%d\na=%x → %x\nb=%x → %x", c, nc, a, na, b, nb)
	}
	// A max-limited key must be a prefix of the full key.
	for _, max := range []int{1, 8, 16} {
		p := norm(nil, a, max)
		if !bytes.HasPrefix(na, p) {
			t.Errorf("max=%d key %x is not a prefix of full key %x", max, p, na)
		}
	}
	return c
}

func TestCompareKeyPathValidOrder(t *testing.T) {
	// Records in strictly ascending key-path order: parents before
	// descendants, siblings by (key, seq), text (empty key) first.
	ordered := [][]byte{
		encodePath("", 0),                        // root
		encodePath("", 0, "", 0),                 // text under root
		encodePath("", 0, "", 0, "x", 1),         // child of the text-position node
		encodePath("", 0, "", 1),                 // second unkeyed child
		encodePath("", 0, "AC", 1),               // keyed children after unkeyed
		encodePath("", 0, "AC", 1, "Atlanta", 2), //
		encodePath("", 0, "AC", 1, "Durham", 1),  //
		encodePath("", 0, "AC", 3),               // same key, later seq
		encodePath("", 0, "NE", 0),               //
		encodePath("", 0, "NE\x00z", 0),          // key with an embedded NUL
		encodePath("", 0, "NEz", 0),              // NUL sorts below 'z'
	}
	for i := range ordered {
		for j := range ordered {
			c := checkAgreement(t, CompareKeyPath, AppendKeyPathKey, ordered[i], ordered[j])
			if want := sign(i - j); c != want {
				t.Errorf("cmp(%d,%d) = %d, want %d", i, j, c, want)
			}
		}
	}
}

func TestCompareKeyPathSeqOrder(t *testing.T) {
	// Seq ordering is numeric, including across varint length boundaries
	// and up to the top of the uint64 range.
	seqs := []int{0, 1, 127, 128, 255, 256, 16383, 16384, 1 << 30}
	for i, sa := range seqs {
		for j, sb := range seqs {
			a := encodePath("k", sa)
			b := encodePath("k", sb)
			if c := checkAgreement(t, CompareKeyPath, AppendKeyPathKey, a, b); c != sign(i-j) {
				t.Errorf("seq %d vs %d: cmp = %d", sa, sb, c)
			}
		}
	}
}

// TestCompareKeyPathMalformed pins the total order on malformed records:
// a truncated record no longer aliases the empty key — it sorts strictly
// after every valid record sharing its parseable prefix, and corrupt
// records order among themselves by raw tail.
func TestCompareKeyPathMalformed(t *testing.T) {
	valid := encodePath("AC", 1)
	validChild := encodePath("AC", 1, "zz", 9)
	validEmpty := encodePath("", 0)

	// Header claims two components, only one present.
	truncated := append([]byte(nil), encodePath("AC", 1)...)
	truncated[0] = 2
	// Key length runs past the buffer.
	overrun := []byte{1, 50, 'x'}
	// Seq varint truncated mid-read.
	seqCut := []byte{1, 2, 'A', 'C', 0x80}
	// Unterminated header varint.
	badHeader := []byte{0x80}

	for _, m := range [][]byte{truncated, overrun, seqCut, badHeader} {
		for _, v := range [][]byte{valid, validChild, validEmpty} {
			checkAgreement(t, CompareKeyPath, AppendKeyPathKey, m, v)
		}
		if c := CompareKeyPath(m, m); c != 0 {
			t.Errorf("corrupt record not equal to itself: %d", c)
		}
	}

	// The old hole: a record truncated after "AC" compared equal to paths
	// that extend it with empty keys. Now it sorts after every valid
	// extension of its parseable prefix.
	if c := CompareKeyPath(truncated, validChild); c <= 0 {
		t.Errorf("truncated record must sort after valid extensions, got %d", c)
	}
	if c := CompareKeyPath(truncated, valid); c <= 0 {
		t.Errorf("truncated record must sort after its valid prefix, got %d", c)
	}
	// And it is distinct from (not aliased to) the empty-keyed record the
	// old comparator collapsed it onto.
	aliased := encodePath("AC", 1, "", 0)
	if c := CompareKeyPath(truncated, aliased); c == 0 {
		t.Error("truncated record still aliases an empty-key extension")
	}
	checkAgreement(t, CompareKeyPath, AppendKeyPathKey, truncated, aliased)

	// Corrupt vs corrupt with different tails orders by tail bytes: both
	// records have key "a" and a seq varint that never terminates.
	m1 := []byte{1, 1, 'a', 0x80, 0x80}
	m2 := []byte{1, 1, 'a', 0x80, 0x81}
	if c := checkAgreement(t, CompareKeyPath, AppendKeyPathKey, m1, m2); c >= 0 {
		t.Errorf("corrupt tails must order by raw bytes, got %d", c)
	}
}

func TestCompareKeySeq(t *testing.T) {
	enc := func(key string, seq int, payload string) []byte {
		var dst []byte
		dst = binary.AppendUvarint(dst, uint64(len(key)))
		dst = append(dst, key...)
		dst = binary.AppendUvarint(dst, uint64(seq))
		return append(dst, payload...)
	}
	ordered := [][]byte{
		enc("", 0, "pay"),
		enc("", 7, ""),
		enc("a", 0, "zzz"),
		enc("a", 1, ""),
		enc("a\x00", 0, ""),
		enc("ab", 3, "x"),
		enc("b", 0, ""),
	}
	for i := range ordered {
		for j := range ordered {
			c := checkAgreement(t, CompareKeySeq, AppendKeySeqKey, ordered[i], ordered[j])
			if want := sign(i - j); c != want {
				t.Errorf("cmp(%d,%d) = %d, want %d", i, j, c, want)
			}
		}
	}
	// Payload is not part of the order.
	if c := CompareKeySeq(enc("k", 2, "aaa"), enc("k", 2, "bbb")); c != 0 {
		t.Errorf("payload leaked into the order: %d", c)
	}
	// Malformed: truncated seq sorts after valid records with the same key.
	cut := []byte{1, 'k', 0x80}
	if c := CompareKeySeq(cut, enc("k", 1<<40, "")); c <= 0 {
		t.Errorf("truncated seq must sort after valid seqs, got %d", c)
	}
	checkAgreement(t, CompareKeySeq, AppendKeySeqKey, cut, enc("k", 3, ""))
}

func TestCompareKeys(t *testing.T) {
	if CompareKeys("", "a") >= 0 || CompareKeys("a", "") <= 0 || CompareKeys("a", "a") != 0 {
		t.Error("CompareKeys is not plain byte order")
	}
}

func TestFixedPrefixKernel(t *testing.T) {
	k := FixedPrefix(8)
	a := append(binary.BigEndian.AppendUint64(nil, 5), "keyA"...)
	b := append(binary.BigEndian.AppendUint64(nil, 9), "keyB"...)
	if k.Compare(a, b) >= 0 || k.Compare(b, a) <= 0 || k.Compare(a, a) != 0 {
		t.Error("FixedPrefix order broken")
	}
	if got := k.AppendKey(nil, b, 0); !bytes.Equal(got, b[:8]) {
		t.Errorf("AppendKey = %x, want %x", got, b[:8])
	}
	// Records shorter than the prefix clamp instead of panicking: a
	// one-byte record is a strict prefix of a's first 8 bytes here.
	if k.Compare([]byte{0}, a) >= 0 {
		t.Error("short record must sort by its clamped prefix")
	}
}

// TestKeyPathRandomPairs drives the agreement property over a large random
// sample of valid and mutilated records.
func TestKeyPathRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randRec := func() []byte {
		depth := rng.Intn(5)
		comps := make([]any, 0, 2*depth+2)
		comps = append(comps, "", 0)
		for i := 0; i < depth; i++ {
			keys := []string{"", "a", "ab", "b\x00c", "zz", "\xff\xfe"}
			comps = append(comps, keys[rng.Intn(len(keys))], rng.Intn(300))
		}
		rec := encodePath(comps...)
		if rng.Intn(3) == 0 { // mutilate: truncate or flip the header
			switch rng.Intn(3) {
			case 0:
				if len(rec) > 1 {
					rec = rec[:1+rng.Intn(len(rec)-1)]
				}
			case 1:
				rec[0] += byte(1 + rng.Intn(4))
			case 2:
				rec = append(rec, 0x80)
			}
		}
		return rec
	}
	for i := 0; i < 3000; i++ {
		checkAgreement(t, CompareKeyPath, AppendKeyPathKey, randRec(), randRec())
	}
}

// TestKeyPathTransitivity spot-checks that the malformed-order extension
// is transitive on random triples (a total order, not just antisymmetric).
func TestKeyPathTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recs := make([][]byte, 60)
	for i := range recs {
		n := rng.Intn(12)
		rec := make([]byte, n)
		rng.Read(rec)
		recs[i] = rec
	}
	for i := 0; i < 4000; i++ {
		a, b, c := recs[rng.Intn(len(recs))], recs[rng.Intn(len(recs))], recs[rng.Intn(len(recs))]
		if CompareKeyPath(a, b) <= 0 && CompareKeyPath(b, c) <= 0 && CompareKeyPath(a, c) > 0 {
			t.Fatalf("transitivity broken:\na=%x\nb=%x\nc=%x", a, b, c)
		}
	}
}

func BenchmarkCompareKeyPath(b *testing.B) {
	recs := benchRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompareKeyPath(recs[i%len(recs)], recs[(i+1)%len(recs)])
	}
}

func BenchmarkNormalizedCompare(b *testing.B) {
	recs := benchRecords()
	keys := make([][]byte, len(recs))
	for i, r := range recs {
		keys[i] = AppendKeyPathKey(nil, r, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytes.Compare(keys[i%len(keys)], keys[(i+1)%len(keys)])
	}
}

func BenchmarkAppendKeyPathKey(b *testing.B) {
	recs := benchRecords()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendKeyPathKey(buf[:0], recs[i%len(recs)], 16)
	}
}

func benchRecords() [][]byte {
	rng := rand.New(rand.NewSource(3))
	recs := make([][]byte, 256)
	for i := range recs {
		comps := []any{"", 0}
		for d := 0; d < 3+rng.Intn(4); d++ {
			comps = append(comps, fmt.Sprintf("key%03d", rng.Intn(100)), rng.Intn(1000))
		}
		recs[i] = encodePath(comps...)
	}
	return recs
}
