package sortkey

// LoserTree is a tournament tree of k leaves — Knuth's tree of losers
// (TAOCP §5.4.1) — the selection structure for k-way merging. Against the
// binary heap it replaces, it halves the comparison count: popping the
// minimum and refilling its leaf replays exactly the leaf-to-root path,
// ⌈log₂k⌉ matches, where a heap's sift-down spends two comparisons per
// level. The caller owns the leaf items and the order; the tree stores
// only int32 leaf indices in one flat array — no interface dispatch, no
// per-node pointers — and the caller's less function closes over whatever
// inline state (cached normalized-key prefixes) makes a match one memcmp.
//
// Protocol: build with NewLoserTree, then loop { w := Winner(); consume
// leaf w; advance leaf w (or mark it exhausted, ordering it after every
// live leaf); Fix() }. The tree never inspects items itself, so "advance"
// and "exhausted" are entirely the caller's notion.
//
// Invariants (checked by the tests):
//   - node[j] for internal j holds the leaf that LOST the match at j; the
//     winner continues upward, so node[0] is the overall winner.
//   - every root-to-leaf path's losers, plus the overall winner, partition
//     the leaves: each leaf appears exactly once in the structure.
//   - after Fix, node[0] is a minimum of all leaves under less.
//
// Comparisons() counts less invocations: k-1 to build, plus at most
// ⌈log₂k⌉ per Fix — the n·⌈log₂k⌉ merge bound the bench harness
// cross-checks.
type LoserTree struct {
	k int
	// node[1..k-1] hold the losers of the internal matches of an implicit
	// complete binary tree whose leaves sit at slots k..2k-1 (leaf i at
	// slot k+i); node[0] holds the overall winner.
	node []int32
	less func(a, b int32) bool
	cmps int64
}

// NewLoserTree builds the tree over leaves 0..k-1 with k-1 comparisons.
// k must be at least 1. less must be a strict weak ordering; for merge
// determinism it should totalize ties (e.g. by leaf index).
func NewLoserTree(k int, less func(a, b int32) bool) *LoserTree {
	t := &LoserTree{k: k, less: less, node: make([]int32, k)}
	if k == 1 {
		t.node[0] = 0
		return t
	}
	// Play the tournament bottom-up: winners[j] is the winner of the
	// subtree rooted at slot j; the loser stays in node[j].
	winners := make([]int32, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = int32(i)
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winners[2*j], winners[2*j+1]
		t.cmps++
		if t.less(b, a) {
			a, b = b, a
		}
		winners[j], t.node[j] = a, b
	}
	t.node[0] = winners[1]
	return t
}

// Winner returns the current minimum leaf.
func (t *LoserTree) Winner() int32 { return t.node[0] }

// Fix replays the winner's leaf-to-root path after the caller changed
// (advanced or exhausted) that leaf's item. No other leaf may have
// changed since the last Fix.
func (t *LoserTree) Fix() {
	cur := t.node[0]
	for j := (t.k + int(cur)) >> 1; j >= 1; j >>= 1 {
		t.cmps++
		if t.less(t.node[j], cur) {
			cur, t.node[j] = t.node[j], cur
		}
	}
	t.node[0] = cur
}

// Comparisons returns the number of less invocations so far.
func (t *LoserTree) Comparisons() int64 { return t.cmps }

// Len returns the number of leaves.
func (t *LoserTree) Len() int { return t.k }
