// Package sortkey is the comparison kernel of the sort hot path: an
// order-preserving binary key encoding plus zero-allocation comparators
// over the record formats the sorters spill.
//
// The central idea is the normalized key of sort engineering practice
// (Rahn/Sanders/Singler; also every database sort since System R): map each
// record to a byte string such that
//
//	bytes.Compare(Normalize(a), Normalize(b)) == Compare(a, b)
//
// so the O(N·log N) comparisons of run formation and the O(log k) per
// output record of merging degenerate to raw memcmp over short inline
// prefixes — no decoding, no per-component string allocation, no pointer
// chasing. The comparators here are the fallback for records whose
// normalized prefixes tie; they walk the encoded bytes in place and never
// allocate.
//
// # Encoding
//
// A key path is a sequence of (key, seq) components (see internal/keypath).
// Its normalized key is the concatenation, per component, of
//
//	0x01                      component tag
//	escape(key)               0x00 → 0x00 0xFF, all other bytes verbatim
//	0x00 0x01                 key terminator
//	byte(n) ++ BE(seq)[8-n:]  n = minimal big-endian byte length of seq
//
// and nothing at the end of the path. Order preservation falls out of
// three facts. First, the escape is monotone: at the first differing key
// byte both sides emit comparable bytes (0x00 escapes to 0x00 0xFF, which
// still sorts below every unescaped byte ≥ 0x01), and a key that is a
// strict prefix of another terminates with 0x00 0x01, which sorts below
// both an unescaped continuation byte (≥ 0x01 at the first position) and
// an escaped 0x00 (0xFF at the second). Second, the seq encoding is
// length-first big-endian, so numeric order and byte order coincide.
// Third, a record whose path is a strict prefix of another's produces a
// normalized key that is a strict byte prefix, and bytes.Compare orders
// prefixes first — exactly the parent-before-descendants order of the
// key-path representation.
//
// # Malformed records
//
// A record that cannot be fully parsed (truncated varint, key length
// overrunning the buffer) does not alias to a valid record — the historic
// hole where a truncated component compared as the empty key. Instead the
// normalized key of the valid prefix is followed by
//
//	0xFF ++ raw remaining bytes
//
// and the comparators mirror the same rule. 0xFF sorts above a component
// tag (0x01), above end-of-path (end of string), and above every seq
// length byte (≤ 0x08), so a corrupt record sorts strictly after every
// valid record sharing its parseable prefix; two corrupt records order by
// their raw tails. The result is a total order (ties only between records
// whose parseable prefixes and corrupt tails coincide), which is what an
// in-flight comparator can offer — surfacing corruption as an error
// remains the job of the decoding read path.
package sortkey

import "bytes"

// Normalized-key byte markers. Their relative order is load-bearing; see
// the package comment.
const (
	tagComponent = 0x01 // precedes every well-formed component
	tagCorrupt   = 0xFF // precedes the raw tail of an unparseable record
)

// Kernel bundles the two halves of a comparison kernel for one record
// format: the zero-allocation comparator and the normalized-key generator
// that agrees with it. Both must be pure functions (safe for concurrent
// use by pool workers).
type Kernel struct {
	// Compare is a total order over encoded records. It must not allocate.
	Compare func(a, b []byte) int
	// AppendKey appends rec's order-preserving normalized key to dst and
	// returns the extended slice: bytes.Compare over generated keys must
	// order exactly as Compare over the records. max > 0 permits stopping
	// early once at least max bytes (beyond dst's initial length) have
	// been appended — the produced key is then a prefix of the full key —
	// for callers that keep only a fixed-size prefix. max <= 0 appends
	// the full key. May be nil, in which case callers fall back to
	// Compare alone.
	AppendKey func(dst, rec []byte, max int) []byte
}

// KeyPath is the kernel for keypath-encoded records (path length, then per
// component a uvarint-prefixed key and a uvarint seq). It is the order of
// keypath.CompareEncoded and keypath.Record.Compare.
func KeyPath() Kernel {
	return Kernel{Compare: CompareKeyPath, AppendKey: AppendKeyPathKey}
}

// KeySeq is the kernel for (key, seq)-headed records: a uvarint-prefixed
// key followed by a uvarint seq, with an arbitrary payload after — the
// child-record format of graceful degeneration.
func KeySeq() Kernel {
	return Kernel{Compare: CompareKeySeq, AppendKey: AppendKeySeqKey}
}

// FixedPrefix is the kernel for records ordered by their first n raw
// bytes (e.g. the big-endian preorder index of the key sidecar). Records
// shorter than n order by their full length-clamped prefix.
func FixedPrefix(n int) Kernel {
	return Kernel{
		Compare: func(a, b []byte) int {
			return bytes.Compare(clamp(a, n), clamp(b, n))
		},
		AppendKey: func(dst, rec []byte, _ int) []byte {
			return append(dst, clamp(rec, n)...)
		},
	}
}

func clamp(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

// CompareKeys is the sibling order on criterion keys: plain byte order,
// with the empty key (text nodes, unkeyed elements) first. It is the one
// definition of key order every sorter and the structural merge share.
func CompareKeys(a, b string) int {
	switch {
	case a == b:
		return 0
	case a < b:
		return -1
	default:
		return 1
	}
}

// uvarint decodes a varint from buf at pos without an io.ByteReader
// round-trip. ok is false when the varint is truncated or overflows 64
// bits; pos is then unchanged (the failing field's first byte).
func uvarint(buf []byte, pos int) (v uint64, next int, ok bool) {
	var shift uint
	for i := pos; i < len(buf); i++ {
		b := buf[i]
		if b < 0x80 {
			if i-pos > 9 || (i-pos == 9 && b > 1) {
				return 0, pos, false // overflows uint64
			}
			return v | uint64(b)<<shift, i + 1, true
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
		if shift >= 64 {
			return 0, pos, false
		}
	}
	return 0, pos, false
}

// appendEscaped appends key with 0x00 escaped to 0x00 0xFF, then the
// 0x00 0x01 terminator.
func appendEscaped(dst, key []byte) []byte {
	for {
		i := bytes.IndexByte(key, 0x00)
		if i < 0 {
			dst = append(dst, key...)
			break
		}
		dst = append(dst, key[:i]...)
		dst = append(dst, 0x00, 0xFF)
		key = key[i+1:]
	}
	return append(dst, 0x00, tagComponent)
}

// appendSeq appends the length-first big-endian encoding of v: one byte
// holding the count of significant bytes (0..8), then those bytes.
func appendSeq(dst []byte, v uint64) []byte {
	n := 0
	for t := v; t > 0; t >>= 8 {
		n++
	}
	dst = append(dst, byte(n))
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// component is one parsed step of an encoded record, or the reason parsing
// stopped.
type component struct {
	state compState
	key   []byte
	seq   uint64
	seqOK bool // false: key parsed but seq truncated (corrupt inside)
	tail  int  // corrupt: offset of the first unparseable field
	next  int  // cursor after this component
}

type compState uint8

const (
	compEnd     compState = iota // past the last component (rank 0)
	compKeyed                    // key parsed; seq per seqOK (rank 1)
	compCorrupt                  // unparseable at the component head (rank 2)
)

// parseComponent parses component i of a record whose header declared n
// components, starting at pos.
func parseComponent(buf []byte, pos int, i, n uint64) component {
	if i >= n {
		return component{state: compEnd, next: pos}
	}
	keyLen, p, ok := uvarint(buf, pos)
	if !ok {
		return component{state: compCorrupt, tail: pos}
	}
	if keyLen > uint64(len(buf)-p) {
		return component{state: compCorrupt, tail: p}
	}
	key := buf[p : p+int(keyLen)]
	pos = p + int(keyLen)
	seq, p, ok := uvarint(buf, pos)
	if !ok {
		return component{state: compKeyed, key: key, tail: pos}
	}
	return component{state: compKeyed, key: key, seq: seq, seqOK: true, next: p}
}

// compareCorruptHeader orders a record x whose header varint does not
// parse (normalized key 0xFF ++ x) against a record y with a parseable
// header. y's normalized key begins with a component tag (0x01), with the
// corrupt marker when its first component is unparseable (0xFF ++ tail),
// or is empty for a zero-component path — so x sorts after y except when
// both reduce to corrupt tails, which order by raw bytes.
func compareCorruptHeader(x, y []byte, py int, ny uint64) int {
	c := parseComponent(y, py, 0, ny)
	if c.state == compCorrupt {
		return bytes.Compare(x, y[c.tail:])
	}
	return 1
}

// CompareKeyPath orders two keypath-encoded records by path, component-wise
// by (key, seq) with strict path prefixes first, without decoding tokens
// and without allocating. Malformed records take the total order described
// in the package comment. It agrees byte-for-byte with
// bytes.Compare(AppendKeyPathKey(nil, a, 0), AppendKeyPathKey(nil, b, 0)).
func CompareKeyPath(a, b []byte) int {
	na, pa, oka := uvarint(a, 0)
	nb, pb, okb := uvarint(b, 0)
	if !oka || !okb {
		switch {
		case !oka && !okb:
			return bytes.Compare(a, b)
		case !oka:
			return compareCorruptHeader(a, b, pb, nb)
		default:
			return -compareCorruptHeader(b, a, pa, na)
		}
	}
	for i := uint64(0); ; i++ {
		ca := parseComponent(a, pa, i, na)
		cb := parseComponent(b, pb, i, nb)
		if ca.state != cb.state {
			if ca.state < cb.state {
				return -1
			}
			return 1
		}
		switch ca.state {
		case compEnd:
			return 0
		case compCorrupt:
			return bytes.Compare(a[ca.tail:], b[cb.tail:])
		}
		if c := bytes.Compare(ca.key, cb.key); c != 0 {
			return c
		}
		if !ca.seqOK || !cb.seqOK {
			switch {
			case !ca.seqOK && !cb.seqOK:
				return bytes.Compare(a[ca.tail:], b[cb.tail:])
			case !ca.seqOK:
				return 1
			default:
				return -1
			}
		}
		if ca.seq != cb.seq {
			if ca.seq < cb.seq {
				return -1
			}
			return 1
		}
		pa, pb = ca.next, cb.next
	}
}

// AppendKeyPathKey appends the normalized key of a keypath-encoded record.
// See Kernel.AppendKey for the dst/max contract.
func AppendKeyPathKey(dst, rec []byte, max int) []byte {
	base := len(dst)
	n, pos, ok := uvarint(rec, 0)
	if !ok {
		return append(append(dst, tagCorrupt), rec...)
	}
	for i := uint64(0); i < n; i++ {
		if max > 0 && len(dst)-base >= max {
			return dst
		}
		c := parseComponent(rec, pos, i, n)
		if c.state == compCorrupt {
			return append(append(dst, tagCorrupt), rec[c.tail:]...)
		}
		dst = append(dst, tagComponent)
		dst = appendEscaped(dst, c.key)
		if !c.seqOK {
			return append(append(dst, tagCorrupt), rec[c.tail:]...)
		}
		dst = appendSeq(dst, c.seq)
		pos = c.next
	}
	return dst
}

// CompareKeySeq orders (key, seq)-headed records — keyLen uvarint, key
// bytes, seq uvarint, then an ignored payload — by (key, seq), with the
// same malformed-record total order as CompareKeyPath. It agrees with
// bytes.Compare over AppendKeySeqKey.
func CompareKeySeq(a, b []byte) int {
	ca := parseComponent(a, 0, 0, 1)
	cb := parseComponent(b, 0, 0, 1)
	if ca.state != cb.state { // compKeyed vs compCorrupt only
		if ca.state < cb.state {
			return -1
		}
		return 1
	}
	if ca.state == compCorrupt {
		return bytes.Compare(a[ca.tail:], b[cb.tail:])
	}
	if c := bytes.Compare(ca.key, cb.key); c != 0 {
		return c
	}
	if !ca.seqOK || !cb.seqOK {
		switch {
		case !ca.seqOK && !cb.seqOK:
			return bytes.Compare(a[ca.tail:], b[cb.tail:])
		case !ca.seqOK:
			return 1
		default:
			return -1
		}
	}
	switch {
	case ca.seq < cb.seq:
		return -1
	case ca.seq > cb.seq:
		return 1
	default:
		return 0
	}
}

// AppendKeySeqKey appends the normalized key of a (key, seq)-headed record.
// See Kernel.AppendKey for the dst/max contract.
func AppendKeySeqKey(dst, rec []byte, _ int) []byte {
	c := parseComponent(rec, 0, 0, 1)
	if c.state == compCorrupt {
		return append(append(dst, tagCorrupt), rec[c.tail:]...)
	}
	dst = append(dst, tagComponent)
	dst = appendEscaped(dst, c.key)
	if !c.seqOK {
		return append(append(dst, tagCorrupt), rec[c.tail:]...)
	}
	return appendSeq(dst, c.seq)
}
