// Package keys defines ordering criteria for XML sorting and the machinery
// to evaluate them in a single streaming pass, as Section 3.2 of the paper
// ("Complex ordering criteria") requires: an element's key must be
// computable from its start tag, or from its ancestors plus one pass over
// its subtree using constant space. Every sorter in this repository —
// NEXSORT, the key-path external merge sort baseline, and the in-memory
// recursive oracle — evaluates keys through this package, which is what
// makes their outputs byte-identical and hence cross-checkable.
//
// A Criterion is an ordered list of rules matched by element tag name. Each
// rule names a key source:
//
//   - ByAttr("ID"): the value of an attribute, available at the start tag
//     (the paper's experiments use this form: order region and branch by
//     the name attribute, employee by ID);
//   - ByTag(): the element's tag name itself;
//   - ByText(): the element's first direct text child;
//   - ByPath("personalInfo", "name", "lastName"): the first direct text of
//     the first descendant reached by the given child chain, in document
//     order — the paper's motivating complex criterion.
//
// Elements whose key is missing (absent attribute, no matching descendant)
// sort with the empty key. All comparisons break ties by document position,
// which both makes the sort deterministic and implements the paper's
// "append the element's location in the input" uniqueness device.
package keys

import (
	"fmt"
	"strings"

	"nexsort/internal/sortkey"
)

// SourceKind enumerates where an element's key comes from.
type SourceKind byte

// Key sources.
const (
	// SrcTag uses the element's tag name; resolvable at the start tag.
	SrcTag SourceKind = iota
	// SrcAttr uses an attribute value; resolvable at the start tag.
	SrcAttr
	// SrcText uses the first direct text child; needs a subtree pass.
	SrcText
	// SrcPath uses the first direct text of the first descendant matching
	// a child chain; needs a subtree pass.
	SrcPath
)

// Source is a key source with its argument.
type Source struct {
	Kind SourceKind
	// Attr is the attribute name for SrcAttr.
	Attr string
	// Path is the child chain for SrcPath (empty for SrcText, which is
	// the zero-length path).
	Path []string
}

// ByTag orders elements by tag name.
func ByTag() Source { return Source{Kind: SrcTag} }

// ByAttr orders elements by the value of the named attribute.
func ByAttr(name string) Source { return Source{Kind: SrcAttr, Attr: name} }

// ByText orders elements by their first direct text child.
func ByText() Source { return Source{Kind: SrcText} }

// ByPath orders elements by the first direct text of the first descendant
// reached through the given chain of child tag names.
func ByPath(chain ...string) Source { return Source{Kind: SrcPath, Path: chain} }

// StartResolvable reports whether the key is fully determined by the start
// tag alone (no subtree pass needed).
func (s Source) StartResolvable() bool { return s.Kind == SrcTag || s.Kind == SrcAttr }

// depth returns the length of the descendant chain the source must walk;
// keys at relative depth greater than depth+1 can never affect the matcher.
func (s Source) depth() int {
	if s.Kind == SrcPath {
		return len(s.Path)
	}
	return 0
}

// String renders the source in a compact XPath-like form.
func (s Source) String() string {
	switch s.Kind {
	case SrcTag:
		return "name()"
	case SrcAttr:
		return "@" + s.Attr
	case SrcText:
		return "text()"
	case SrcPath:
		return strings.Join(s.Path, "/") + "/text()"
	default:
		return fmt.Sprintf("source(%d)", s.Kind)
	}
}

// Rule binds a key source to the elements it applies to.
type Rule struct {
	// Tag is the element tag name the rule applies to; "" matches every
	// element, so a trailing {Tag: ""} rule acts as a default.
	Tag    string
	Source Source
}

// Criterion is a complete ordering specification.
type Criterion struct {
	// Rules are tried in order; the first rule whose Tag matches (exactly,
	// or "" as a wildcard) supplies the element's key source. Elements
	// matching no rule get the empty key and keep document order among
	// siblings (via the position tie-break).
	Rules []Rule
	// KeyCap bounds the stored key length in bytes. Longer keys are
	// truncated for comparison (ties broken by position), which keeps the
	// per-element bookkeeping constant-space as the model requires.
	// Zero means DefaultKeyCap.
	KeyCap int
}

// DefaultKeyCap is the key-length bound used when Criterion.KeyCap is zero.
const DefaultKeyCap = 64

// ByAttrOrTag is the workhorse criterion of the paper's experiments: order
// every element by the named attribute, falling back to the tag name when
// the attribute is absent.
func ByAttrOrTag(attr string) *Criterion {
	return &Criterion{Rules: []Rule{{Tag: "", Source: ByAttr(attr)}}}
}

// keyCap returns the effective key capacity.
func (c *Criterion) keyCap() int {
	if c == nil || c.KeyCap <= 0 {
		return DefaultKeyCap
	}
	return c.KeyCap
}

// ruleIndex returns the index of the first rule matching tag, or -1.
func (c *Criterion) ruleIndex(tag string) int {
	if c == nil {
		return -1
	}
	for i, r := range c.Rules {
		if r.Tag == "" || r.Tag == tag {
			return i
		}
	}
	return -1
}

// SourceFor returns the key source used for elements with the given tag,
// and whether any rule applies.
func (c *Criterion) SourceFor(tag string) (Source, bool) {
	i := c.ruleIndex(tag)
	if i < 0 {
		return Source{}, false
	}
	return c.Rules[i].Source, true
}

// MaxPathDepth returns the deepest descendant chain any rule walks. The
// streaming evaluator only ever needs to update the innermost
// MaxPathDepth()+1 open elements, which is what keeps evaluation
// constant-space per element.
func (c *Criterion) MaxPathDepth() int {
	d := 0
	if c == nil {
		return 0
	}
	for _, r := range c.Rules {
		if rd := r.Source.depth(); rd > d {
			d = rd
		}
	}
	return d
}

// Clip truncates key to the criterion's key capacity.
func (c *Criterion) Clip(key string) string {
	if cap := c.keyCap(); len(key) > cap {
		return key[:cap]
	}
	return key
}

// Compare orders two elements by (key, position): keys by
// sortkey.CompareKeys — the shared sibling order every sorter and the
// structural merge normalize — with document position as the tie-break.
// Text nodes participate with the empty key, so they sort before keyed
// siblings and keep document order among themselves.
func Compare(keyA string, posA int64, keyB string, posB int64) int {
	if c := sortkey.CompareKeys(keyA, keyB); c != 0 {
		return c
	}
	switch {
	case posA < posB:
		return -1
	case posA > posB:
		return 1
	default:
		return 0
	}
}
