package keys

import (
	"fmt"

	"nexsort/internal/xmltok"
)

// SpillStack is the external-memory stack the Annotator spills matcher
// states to when the document is deeper than its in-memory window. It is
// satisfied by *xstack.RecordStack; records have Criterion.StateSize bytes.
type SpillStack interface {
	Push(rec []byte) error
	Pop(dst []byte) error
	Len() int64
}

// Annotator turns a raw token stream into an annotated one: start tags gain
// the element's key when it is resolvable from the tag alone, and every end
// tag gains the element's final key. Downstream sorters consume keys from
// the annotated tokens and never re-evaluate ordering expressions — the
// paper's "result can be pushed onto the data stack with the end tag and
// used for sorting".
//
// The annotator holds matchers for the innermost W open elements in memory,
// where W ≥ MaxPathDepth()+1 — by construction, no token can affect a
// matcher further than MaxPathDepth()+1 levels above it, so matchers below
// the window are frozen. When the document nests deeper than W, frozen
// matchers spill to the provided external stack (pass nil to keep
// everything in memory, appropriate for the merge-sort baseline whose
// key-path buffer is in memory anyway).
type Annotator struct {
	c      *Criterion
	window []Matcher // innermost element's matcher last
	wcap   int
	depth  int // total open elements (window + spilled)
	spill  SpillStack
	buf    []byte // scratch record for spill transfers
}

// minAnnotatorWindow keeps spill traffic negligible for shallow criteria.
const minAnnotatorWindow = 8

// NewAnnotator creates an annotator for criterion c. spill may be nil.
func NewAnnotator(c *Criterion, spill SpillStack) *Annotator {
	w := c.MaxPathDepth() + 1
	if w < minAnnotatorWindow {
		w = minAnnotatorWindow
	}
	return &Annotator{c: c, wcap: w, spill: spill, buf: make([]byte, c.StateSize())}
}

// WindowSize returns the number of matcher states held in memory at most;
// the value the path-stack analysis treats as a constant.
func (a *Annotator) WindowSize() int { return a.wcap }

// Depth returns the number of currently open elements.
func (a *Annotator) Depth() int { return a.depth }

// Annotate processes one token and returns it, annotated. Tokens must form
// a well-formed stream (the parser guarantees this).
func (a *Annotator) Annotate(tok xmltok.Token) (xmltok.Token, error) {
	switch tok.Kind {
	case xmltok.KindStart:
		// Feed ancestors: the new element sits at relative depth j for
		// the ancestor j levels up; only j ≤ MaxPathDepth can matter.
		for j := 1; j <= len(a.window); j++ {
			a.window[len(a.window)-j].OnStart(a.c, tok.Name, j)
		}
		m := a.c.NewMatcher(tok)
		if err := a.push(m); err != nil {
			return tok, err
		}
		if src, ok := a.c.SourceFor(tok.Name); !ok {
			// No rule applies: the key is known (empty) already.
			tok = tok.WithKey("")
		} else if src.StartResolvable() {
			key, _ := m.Key()
			tok = tok.WithKey(key)
		}
		return tok, nil

	case xmltok.KindText:
		// Text is a direct child of the innermost element: r = j-1 open
		// descendants separate it from the ancestor j levels up.
		for j := 1; j <= len(a.window); j++ {
			a.window[len(a.window)-j].OnText(a.c, tok.Text, j-1)
		}
		return tok, nil

	case xmltok.KindEnd:
		if a.depth == 0 {
			return tok, fmt.Errorf("keys: end tag </%s> with no open element", tok.Name)
		}
		m, err := a.pop()
		if err != nil {
			return tok, err
		}
		key := m.Finalize()
		// The closing element is at relative depth j for each remaining
		// ancestor j levels up; their open chains retreat.
		for j := 1; j <= len(a.window); j++ {
			a.window[len(a.window)-j].OnEnd(j)
		}
		return tok.WithKey(key), nil

	default:
		return tok, nil
	}
}

func (a *Annotator) push(m Matcher) error {
	if len(a.window) == a.wcap {
		// Spill the outermost in-window matcher; it is now more than
		// MaxPathDepth+1 levels above any future token until its subtree
		// closes back down to it, so its state is frozen.
		if a.spill == nil {
			// No external stack: grow the window instead (in-memory
			// mode, used by the baseline).
			a.wcap *= 2
		} else {
			if err := a.window[0].MarshalTo(a.c, a.buf); err != nil {
				return err
			}
			if err := a.spill.Push(a.buf); err != nil {
				return fmt.Errorf("keys: spilling matcher: %w", err)
			}
			copy(a.window, a.window[1:])
			a.window = a.window[:len(a.window)-1]
		}
	}
	a.window = append(a.window, m)
	a.depth++
	return nil
}

func (a *Annotator) pop() (Matcher, error) {
	m := a.window[len(a.window)-1]
	a.window = a.window[:len(a.window)-1]
	a.depth--
	// Refill the bottom of the window from the spill so the invariant
	// "window holds the innermost min(depth, wcap) matchers" is restored.
	if a.spill != nil && a.spill.Len() > 0 && len(a.window) < a.wcap && a.depth > len(a.window) {
		if err := a.spill.Pop(a.buf); err != nil {
			return m, fmt.Errorf("keys: unspilling matcher: %w", err)
		}
		um, err := UnmarshalMatcher(a.c, a.buf)
		if err != nil {
			return m, err
		}
		a.window = append(a.window, Matcher{})
		copy(a.window[1:], a.window)
		a.window[0] = um
	}
	return m, nil
}
