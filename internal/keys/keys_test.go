package keys

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/em"
	"nexsort/internal/xmltok"
	"nexsort/internal/xstack"
)

func TestSourceString(t *testing.T) {
	cases := map[string]Source{
		"name()":      ByTag(),
		"@ID":         ByAttr("ID"),
		"text()":      ByText(),
		"a/b/text()":  ByPath("a", "b"),
		"name/text()": ByPath("name"),
	}
	for want, src := range cases {
		if got := src.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestCriterionRules(t *testing.T) {
	c := &Criterion{Rules: []Rule{
		{Tag: "employee", Source: ByAttr("ID")},
		{Tag: "region", Source: ByAttr("name")},
		{Tag: "", Source: ByTag()},
	}}
	if src, ok := c.SourceFor("employee"); !ok || src.Attr != "ID" {
		t.Errorf("employee rule = %v, %v", src, ok)
	}
	if src, ok := c.SourceFor("anything"); !ok || src.Kind != SrcTag {
		t.Errorf("wildcard rule = %v, %v", src, ok)
	}
	c2 := &Criterion{Rules: []Rule{{Tag: "x", Source: ByTag()}}}
	if _, ok := c2.SourceFor("y"); ok {
		t.Error("non-matching tag should report no rule")
	}
}

func TestMaxPathDepth(t *testing.T) {
	c := &Criterion{Rules: []Rule{
		{Tag: "a", Source: ByAttr("x")},
		{Tag: "b", Source: ByPath("p", "q", "r")},
		{Tag: "c", Source: ByText()},
	}}
	if got := c.MaxPathDepth(); got != 3 {
		t.Errorf("MaxPathDepth = %d, want 3", got)
	}
	if got := ByAttrOrTag("ID").MaxPathDepth(); got != 0 {
		t.Errorf("attr criterion MaxPathDepth = %d, want 0", got)
	}
}

func TestClip(t *testing.T) {
	c := &Criterion{KeyCap: 4}
	if got := c.Clip("abcdef"); got != "abcd" {
		t.Errorf("Clip = %q", got)
	}
	if got := c.Clip("ab"); got != "ab" {
		t.Errorf("Clip = %q", got)
	}
	var def Criterion
	long := strings.Repeat("x", 100)
	if got := def.Clip(long); len(got) != DefaultKeyCap {
		t.Errorf("default clip length = %d", len(got))
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		ka   string
		pa   int64
		kb   string
		pb   int64
		want int
	}{
		{"a", 0, "b", 0, -1},
		{"b", 0, "a", 0, 1},
		{"a", 1, "a", 2, -1},
		{"a", 2, "a", 1, 1},
		{"a", 1, "a", 1, 0},
		{"", 5, "a", 1, -1},   // empty key sorts first
		{"10", 0, "9", 0, -1}, // lexicographic, not numeric
	}
	for _, tc := range cases {
		if got := Compare(tc.ka, tc.pa, tc.kb, tc.pb); got != tc.want {
			t.Errorf("Compare(%q,%d,%q,%d) = %d, want %d", tc.ka, tc.pa, tc.kb, tc.pb, got, tc.want)
		}
	}
}

// annotateDoc runs a document through a fresh annotator and returns the
// key recorded on each element's end tag, keyed by order of closing.
func annotateDoc(t *testing.T, c *Criterion, doc string, spill SpillStack) []string {
	t.Helper()
	a := NewAnnotator(c, spill)
	p := xmltok.NewParser(strings.NewReader(doc), xmltok.DefaultParserOptions())
	var endKeys []string
	for {
		tok, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tok, err = a.Annotate(tok)
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == xmltok.KindEnd {
			if !tok.HasKey {
				t.Fatalf("end tag </%s> missing key annotation", tok.Name)
			}
			endKeys = append(endKeys, tok.Name+"="+tok.Key)
		}
		if tok.Kind == xmltok.KindStart {
			if src, ok := c.SourceFor(tok.Name); ok && src.StartResolvable() && !tok.HasKey {
				t.Fatalf("start tag <%s> missing resolvable key", tok.Name)
			}
		}
	}
	return endKeys
}

func TestAnnotatorAttrKeys(t *testing.T) {
	doc := `<company><region name="NE"><branch name="Durham"/></region><region name="AC"/></company>`
	c := &Criterion{Rules: []Rule{{Tag: "", Source: ByAttr("name")}}}
	got := annotateDoc(t, c, doc, nil)
	want := []string{"branch=Durham", "region=NE", "region=AC", "company="}
	assertStrings(t, got, want)
}

func TestAnnotatorTextKeys(t *testing.T) {
	doc := `<list><item>beta</item><item>alpha<sub>no</sub></item><item><sub>skip</sub>gamma</item></list>`
	c := &Criterion{Rules: []Rule{{Tag: "item", Source: ByText()}}}
	got := annotateDoc(t, c, doc, nil)
	want := []string{"item=beta", "sub=", "item=alpha", "sub=", "item=gamma", "list="}
	assertStrings(t, got, want)
}

func TestAnnotatorPathKeys(t *testing.T) {
	doc := `<staff>
	  <employee ID="2"><personalInfo><name><lastName>Ng</lastName></name></personalInfo></employee>
	  <employee ID="1"><personalInfo><note>x</note><name><first>A</first><lastName>Wu</lastName></name></personalInfo></employee>
	  <employee ID="3"><personalInfo><name><lastName><x/>deep</lastName></name></personalInfo></employee>
	  <employee ID="4"><other><name><lastName>Wrong</lastName></name></other></employee>
	</staff>`
	c := &Criterion{Rules: []Rule{{Tag: "employee", Source: ByPath("personalInfo", "name", "lastName")}}}
	got := annotateDoc(t, c, doc, nil)
	var empKeys []string
	for _, k := range got {
		if strings.HasPrefix(k, "employee=") {
			empKeys = append(empKeys, k)
		}
	}
	// Employee 3's lastName has an element before its text; the text is
	// still a direct child of the matched element, so it is captured.
	// Employee 4's chain goes through <other>, which does not match.
	want := []string{"employee=Ng", "employee=Wu", "employee=deep", "employee="}
	assertStrings(t, empKeys, want)
}

func TestAnnotatorPathFirstMatchWins(t *testing.T) {
	doc := `<e><a><b></b></a><a><b>second</b></a><a><b>third</b></a></e>`
	c := &Criterion{Rules: []Rule{{Tag: "e", Source: ByPath("a", "b")}}}
	got := annotateDoc(t, c, doc, nil)
	if got[len(got)-1] != "e=second" {
		t.Errorf("e key = %q, want e=second (first complete match in document order)", got[len(got)-1])
	}
}

func TestAnnotatorPathDepthAlignment(t *testing.T) {
	// A 'b' nested one level too deep must not match path a/b.
	doc := `<e><a><wrap><b>nope</b></wrap></a><a><b>yes</b></a></e>`
	c := &Criterion{Rules: []Rule{{Tag: "e", Source: ByPath("a", "b")}}}
	got := annotateDoc(t, c, doc, nil)
	if got[len(got)-1] != "e=yes" {
		t.Errorf("e key = %q, want e=yes", got[len(got)-1])
	}
}

func TestAnnotatorKeyCapTruncation(t *testing.T) {
	doc := `<e name="` + strings.Repeat("k", 100) + `"/>`
	c := &Criterion{Rules: []Rule{{Tag: "", Source: ByAttr("name")}}, KeyCap: 10}
	got := annotateDoc(t, c, doc, nil)
	if got[0] != "e="+strings.Repeat("k", 10) {
		t.Errorf("truncated key = %q", got[0])
	}
}

func TestAnnotatorMismatchedEnd(t *testing.T) {
	a := NewAnnotator(ByAttrOrTag("x"), nil)
	if _, err := a.Annotate(xmltok.Token{Kind: xmltok.KindEnd, Name: "ghost"}); err == nil {
		t.Error("end without start should fail")
	}
}

// deepDoc builds a document nested n levels with a path-keyed leaf payload.
func deepDoc(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString(`<item ID="x"/>`)
	for i := 0; i < n; i++ {
		sb.WriteString("</d>")
	}
	return sb.String()
}

// TestAnnotatorSpill verifies that deep documents exercise the spill stack
// and produce the same annotations as the in-memory mode.
func TestAnnotatorSpill(t *testing.T) {
	c := &Criterion{Rules: []Rule{{Tag: "item", Source: ByAttr("ID")}, {Tag: "", Source: ByText()}}}
	doc := deepDoc(100)

	inMem := annotateDoc(t, c, doc, nil)

	stats := em.NewStats()
	dev := em.NewDevice(em.NewMemBackend(), 256, stats)
	spill, err := xstack.NewRecordStack(dev, em.CatPathStack, nil, 2, c.StateSize())
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	spilled := annotateDoc(t, c, doc, spill)

	assertStrings(t, spilled, inMem)
	if stats.IOs(em.CatPathStack) == 0 {
		t.Error("expected spill traffic on a 100-deep document with a 256-byte spill block")
	}
	if spill.Len() != 0 {
		t.Errorf("spill stack not drained: %d records left", spill.Len())
	}
}

// TestAnnotatorSpillEquivalenceQuick compares spilled and in-memory
// annotation on random documents.
func TestAnnotatorSpillEquivalenceQuick(t *testing.T) {
	c := &Criterion{Rules: []Rule{
		{Tag: "a", Source: ByPath("b", "c")},
		{Tag: "b", Source: ByText()},
		{Tag: "", Source: ByAttr("k")},
	}}
	f := func(seed int64) bool {
		doc := randomDoc(rand.New(rand.NewSource(seed)), 40)
		inMem := collectKeys(c, doc, nil)
		dev := em.NewDevice(em.NewMemBackend(), 128, nil)
		spill, err := xstack.NewRecordStack(dev, em.CatPathStack, nil, 2, c.StateSize())
		if err != nil {
			return false
		}
		defer spill.Close()
		ext := collectKeys(c, doc, spill)
		if len(inMem) != len(ext) {
			return false
		}
		for i := range inMem {
			if inMem[i] != ext[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func collectKeys(c *Criterion, doc string, spill SpillStack) []string {
	a := NewAnnotator(c, spill)
	p := xmltok.NewParser(strings.NewReader(doc), xmltok.DefaultParserOptions())
	var out []string
	for {
		tok, err := p.Next()
		if err != nil {
			return out
		}
		tok, err = a.Annotate(tok)
		if err != nil {
			return nil
		}
		if tok.Kind == xmltok.KindEnd {
			out = append(out, tok.Name+"="+tok.Key)
		}
	}
}

// randomDoc builds a random nested document using tags a, b, c with
// occasional text and attributes.
func randomDoc(rng *rand.Rand, maxElems int) string {
	var sb strings.Builder
	tags := []string{"a", "b", "c"}
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag)
		if rng.Intn(2) == 0 {
			sb.WriteString(` k="v` + string(rune('0'+rng.Intn(10))) + `"`)
		}
		sb.WriteString(">")
		budget--
		for i := rng.Intn(3); i > 0; i-- {
			if rng.Intn(3) == 0 {
				sb.WriteString("t" + string(rune('0'+rng.Intn(10))))
			} else if depth < 30 {
				budget = emit(depth+1, budget)
			}
		}
		sb.WriteString("</" + tag + ">")
		return budget
	}
	sb.WriteString("<root>")
	budget := 1 + rng.Intn(maxElems)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</root>")
	return sb.String()
}

func TestMatcherMarshalRoundTrip(t *testing.T) {
	c := &Criterion{Rules: []Rule{{Tag: "e", Source: ByPath("a", "b")}}, KeyCap: 16}
	m := c.NewMatcher(xmltok.Token{Kind: xmltok.KindStart, Name: "e"})
	m.OnStart(c, "a", 1)
	buf := make([]byte, c.StateSize())
	if err := m.MarshalTo(c, buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMatcher(c, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip: got %+v, want %+v", got, m)
	}
	// Continue evaluation on the unmarshalled matcher.
	got.OnStart(c, "b", 2)
	got.OnText(c, "found", 2)
	if key, ok := got.Key(); !ok || key != "found" {
		t.Errorf("key after resume = %q, %v", key, ok)
	}
	if err := m.MarshalTo(c, buf[:3]); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := UnmarshalMatcher(c, buf[:3]); err == nil {
		t.Error("short unmarshal should fail")
	}
}

func TestMatcherNoRule(t *testing.T) {
	c := &Criterion{Rules: []Rule{{Tag: "only", Source: ByTag()}}}
	m := c.NewMatcher(xmltok.Token{Kind: xmltok.KindStart, Name: "other"})
	if !m.done {
		t.Error("no-rule matcher should be done immediately")
	}
	if key := m.Finalize(); key != "" {
		t.Errorf("no-rule key = %q", key)
	}
}

func assertStrings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %q, want %q\nfull: %v vs %v", i, got[i], want[i], got, want)
		}
	}
}
