package keys

import (
	"encoding/binary"
	"fmt"

	"nexsort/internal/xmltok"
)

// Matcher incrementally evaluates one element's ordering key as the
// element's subtree streams by. It is the constant-space evaluator promised
// by Section 3.2: a rule index, a match counter, two flags and a bounded key
// buffer — small enough to ride on the (externally paged) path stack.
//
// For a path source with components P[0..L-1], the matcher tracks how many
// leading components are matched by the currently open descendant chain. It
// captures the first text that appears as a direct child of a fully matched
// chain, in document order, then stops. Relative depths are supplied by the
// caller (they are implicit in its element stack, so the matcher need not
// store them).
type Matcher struct {
	ruleIdx int // index into Criterion.Rules; -1 when no rule applies
	matched int // leading path components matched by the open chain
	done    bool
	found   bool
	key     string
}

// NewMatcher creates the matcher for an element from its start token. For
// start-resolvable sources (tag, attribute) the matcher completes
// immediately.
func (c *Criterion) NewMatcher(start xmltok.Token) Matcher {
	idx := c.ruleIndex(start.Name)
	m := Matcher{ruleIdx: idx}
	if idx < 0 {
		m.done = true
		return m
	}
	switch src := c.Rules[idx].Source; src.Kind {
	case SrcTag:
		m.key, m.found, m.done = c.Clip(start.Name), true, true
	case SrcAttr:
		if v, ok := start.Attr(src.Attr); ok {
			m.key, m.found = c.Clip(v), true
		}
		m.done = true
	}
	return m
}

// source returns the matcher's key source (zero Source if none).
func (m *Matcher) source(c *Criterion) Source {
	if m.ruleIdx < 0 {
		return Source{}
	}
	return c.Rules[m.ruleIdx].Source
}

// OnStart observes a descendant start tag at relative depth r (r=1 is a
// direct child of the matcher's element).
func (m *Matcher) OnStart(c *Criterion, name string, r int) {
	if m.done {
		return
	}
	src := m.source(c)
	if src.Kind != SrcPath {
		return
	}
	if r <= len(src.Path) && m.matched == r-1 && src.Path[r-1] == name {
		m.matched = r
	}
}

// OnText observes descendant text with r open descendant elements (r=0
// means the text is a direct child of the matcher's element).
func (m *Matcher) OnText(c *Criterion, text string, r int) {
	if m.done {
		return
	}
	src := m.source(c)
	L := src.depth()
	if r == L && m.matched == L {
		m.key, m.found, m.done = c.Clip(text), true, true
	}
}

// OnEnd observes a descendant end tag at relative depth r (r=1 is a direct
// child closing). The open chain retreats, so the match counter regresses.
func (m *Matcher) OnEnd(r int) {
	if m.done {
		return
	}
	if r <= m.matched {
		m.matched = r - 1
	}
}

// Finalize completes evaluation at the element's own end tag and returns
// the key (empty if the source never produced a value).
func (m *Matcher) Finalize() string {
	m.done = true
	return m.key
}

// Key returns the current key and whether a value was found.
func (m *Matcher) Key() (string, bool) { return m.key, m.found }

// Matcher state serialization: matchers for elements deeper than the active
// window are spilled to an external-memory stack alongside the path stack,
// exactly as the paper augments the path stack with pending ordering
// expressions. The record layout is fixed-size:
//
//	ruleIdx int16 | flags byte | matched uint16 | keyLen uint16 | key [KeyCap]
const matcherHeaderSize = 2 + 1 + 2 + 2

// StateSize returns the fixed marshalled size of a matcher under c.
func (c *Criterion) StateSize() int { return matcherHeaderSize + c.keyCap() }

// MarshalTo writes the matcher state into dst, which must be StateSize
// bytes.
func (m *Matcher) MarshalTo(c *Criterion, dst []byte) error {
	if len(dst) != c.StateSize() {
		return fmt.Errorf("keys: marshal buffer is %d bytes, want %d", len(dst), c.StateSize())
	}
	binary.LittleEndian.PutUint16(dst[0:], uint16(int16(m.ruleIdx)))
	var flags byte
	if m.done {
		flags |= 1
	}
	if m.found {
		flags |= 2
	}
	dst[2] = flags
	binary.LittleEndian.PutUint16(dst[3:], uint16(m.matched))
	binary.LittleEndian.PutUint16(dst[5:], uint16(len(m.key)))
	copy(dst[matcherHeaderSize:], m.key)
	return nil
}

// UnmarshalMatcher reconstructs a matcher from a record written by
// MarshalTo.
func UnmarshalMatcher(c *Criterion, src []byte) (Matcher, error) {
	if len(src) != c.StateSize() {
		return Matcher{}, fmt.Errorf("keys: unmarshal buffer is %d bytes, want %d", len(src), c.StateSize())
	}
	m := Matcher{
		ruleIdx: int(int16(binary.LittleEndian.Uint16(src[0:]))),
		matched: int(binary.LittleEndian.Uint16(src[3:])),
		done:    src[2]&1 != 0,
		found:   src[2]&2 != 0,
	}
	keyLen := int(binary.LittleEndian.Uint16(src[5:]))
	if keyLen > c.keyCap() {
		return Matcher{}, fmt.Errorf("keys: corrupt matcher record: key length %d exceeds cap %d", keyLen, c.keyCap())
	}
	m.key = string(src[matcherHeaderSize : matcherHeaderSize+keyLen])
	return m, nil
}
