package keypath

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/keys"
	"nexsort/internal/xmltok"
)

// d1 is document D1 from Figure 1 of the paper, in its original
// (pre-sorting) element order as shown in the figure.
const d1 = `<company>
  <region name="NE">
    <branch name="Durham" dup="skip"/>
  </region>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
</company>`

// d1Criterion matches the paper: regions and branches by name, employees by
// ID, everything else by tag name.
func d1Criterion() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
		{Tag: "", Source: keys.ByTag()},
	}}
}

// extractDoc parses and annotates a document and runs it through an
// Extractor, returning all records.
func extractDoc(t *testing.T, doc string, c *keys.Criterion) []Record {
	t.Helper()
	p := xmltok.NewParser(strings.NewReader(doc), xmltok.DefaultParserOptions())
	a := keys.NewAnnotator(c, nil)
	e := NewExtractor()
	var recs []Record
	for {
		tok, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tok, err = a.Annotate(tok); err != nil {
			t.Fatal(err)
		}
		rec, ok, err := e.OnToken(tok)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			recs = append(recs, rec)
		}
	}
	if e.Depth() != 0 {
		t.Fatalf("extractor left %d elements open", e.Depth())
	}
	return recs
}

// TestTable1 reproduces the key-path representation of D1 exactly as the
// paper's Table 1 prints it (the table lists the document subset shown in
// its Figure 1 sketch; ours includes every node of d1, sorted).
func TestTable1(t *testing.T) {
	recs := extractDoc(t, d1, d1Criterion())
	sort.Slice(recs, func(i, j int) bool { return recs[i].Compare(recs[j]) < 0 })
	rows := FormatTable(recs)
	want := []Row{
		{"/", "<company>"},
		{"/AC", `<region name="AC">`},
		{"/AC/Atlanta", `<branch name="Atlanta">`},
		{"/AC/Durham", `<branch name="Durham">`},
		{"/AC/Durham/323", `<employee ID="323">`},
		{"/AC/Durham/323/name", "<name>Smith"},
		{"/AC/Durham/323/phone", "<phone>5552345"},
		{"/AC/Durham/454", `<employee ID="454">`},
		{"/NE", `<region name="NE">`},
		{"/NE/Durham", `<branch name="Durham" dup="skip">`},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%v", len(rows), len(want), rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d: got %+v, want %+v", i, rows[i], want[i])
		}
	}
}

func TestRecordCompare(t *testing.T) {
	a := Record{Path: []Component{{"", 0}, {"AC", 1}}}
	b := Record{Path: []Component{{"", 0}, {"AC", 1}, {"Durham", 0}}}
	c := Record{Path: []Component{{"", 0}, {"NE", 0}}}
	if a.Compare(b) >= 0 {
		t.Error("parent should sort before child")
	}
	if b.Compare(a) <= 0 {
		t.Error("child should sort after parent")
	}
	if a.Compare(c) >= 0 {
		t.Error("AC should sort before NE")
	}
	if a.Compare(a) != 0 {
		t.Error("record should equal itself")
	}
	// Same key, different seq.
	d := Record{Path: []Component{{"", 0}, {"AC", 2}}}
	if a.Compare(d) >= 0 {
		t.Error("lower seq should sort first")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := extractDoc(t, d1, d1Criterion())
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	reader := bytes.NewReader(buf)
	var got []Record
	for {
		r, err := ReadRecord(reader)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, recs)
	}
}

func TestCompareEncodedMatchesDecoded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Record {
			n := 1 + rng.Intn(4)
			r := Record{Tok: xmltok.Token{Kind: xmltok.KindText, Text: "x"}}
			for i := 0; i < n; i++ {
				r.Path = append(r.Path, Component{
					Key: string(rune('a' + rng.Intn(3))),
					Seq: int64(rng.Intn(3)),
				})
			}
			return r
		}
		a, b := mk(), mk()
		ea := AppendRecord(nil, a)
		eb := AppendRecord(nil, b)
		return sign(CompareEncoded(ea, eb)) == sign(a.Compare(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

func TestExtractorRequiresStartKeys(t *testing.T) {
	e := NewExtractor()
	_, _, err := e.OnToken(xmltok.Token{Kind: xmltok.KindStart, Name: "a"})
	if err == nil || !strings.Contains(err.Error(), "no key") {
		t.Errorf("keyless start: %v", err)
	}
	if _, _, err := e.OnToken(xmltok.Token{Kind: xmltok.KindEnd, Name: "x"}); err == nil {
		t.Error("end without open element should fail")
	}
}

// TestExtractBuildRoundTrip: extracting records, sorting them, and
// rebuilding must equal tokenizing the recursively sorted document.
func TestExtractBuildRoundTrip(t *testing.T) {
	crit := d1Criterion()
	recs := extractDoc(t, d1, crit)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Compare(recs[j]) < 0 })

	var sb strings.Builder
	w := xmltok.NewWriter(&sb)
	b := NewBuilder(func(tok xmltok.Token) error {
		tok.HasKey, tok.Key = false, ""
		return w.WriteToken(tok)
	})
	for _, r := range recs {
		if err := b.OnRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	want := `<company><region name="AC"><branch name="Atlanta"></branch><branch name="Durham"><employee ID="323"><name>Smith</name><phone>5552345</phone></employee><employee ID="454"></employee></branch></region><region name="NE"><branch name="Durham" dup="skip"></branch></region></company>`
	if sb.String() != want {
		t.Errorf("rebuilt document:\n got %s\nwant %s", sb.String(), want)
	}
}

func TestBuilderOutOfOrder(t *testing.T) {
	b := NewBuilder(func(xmltok.Token) error { return nil })
	// A child record arriving before its parent is open must fail.
	err := b.OnRecord(Record{
		Path: []Component{{"", 0}, {"x", 0}},
		Tok:  xmltok.Token{Kind: xmltok.KindStart, Name: "child"},
	})
	if err == nil {
		t.Error("orphan record should fail")
	}
	if err := b.OnRecord(Record{}); err == nil {
		t.Error("empty path should fail")
	}
}

func TestPathString(t *testing.T) {
	root := Record{Path: []Component{{"", 0}}}
	if got := root.PathString(); got != "/" {
		t.Errorf("root path = %q", got)
	}
	deep := Record{Path: []Component{{"", 0}, {"AC", 1}, {"Durham", 0}, {"323", 1}}}
	if got := deep.PathString(); got != "/AC/Durham/323" {
		t.Errorf("deep path = %q", got)
	}
}
