// Package keypath implements the key-path representation of an XML document
// (Table 1 of the paper): one record per node, carrying the concatenation
// of the ordering keys of all elements along the path from the root. The
// regular external-merge-sort competitor sorts these records; because key
// paths encode every ancestor, sorting the records by path order preserves
// all parent–child relationships, and the sorted record stream is exactly
// the depth-first traversal of the sorted document.
//
// Each path component is the pair (key, seq): the ancestor's ordering key
// plus its original position among its siblings, the uniqueness device of
// Section 1 ("if not [unique], we can make it unique by appending it with
// the element's location in the input"). Text nodes take the empty key, so
// they sort ahead of keyed element siblings in document order — the same
// total order every other sorter in this repository uses.
//
// The package provides the record codec and comparator, the Extractor that
// turns an annotated token stream into records, and the Builder that turns
// a sorted record stream back into a token stream.
package keypath

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"nexsort/internal/sortkey"
	"nexsort/internal/xmltok"
)

// Component is one step of a key path.
type Component struct {
	// Key is the element's ordering key ("" for text nodes and for
	// elements with no applicable rule).
	Key string
	// Seq is the element's position among its siblings in the original
	// document.
	Seq int64
}

// Compare orders components by (Key, Seq).
func (c Component) Compare(o Component) int {
	if c.Key != o.Key {
		if c.Key < o.Key {
			return -1
		}
		return 1
	}
	switch {
	case c.Seq < o.Seq:
		return -1
	case c.Seq > o.Seq:
		return 1
	default:
		return 0
	}
}

// Record is one node of the key-path representation: the path from the root
// down to and including the node itself, plus the node's own content (a
// start tag with attributes, a text token, or a run pointer — never the
// node's children, which have records of their own).
type Record struct {
	Path []Component
	Tok  xmltok.Token
}

// Compare orders records by path, component-wise, with a strict path prefix
// sorting first — so a parent's record precedes all of its descendants',
// exactly the Table 1 order.
func (r Record) Compare(o Record) int {
	n := len(r.Path)
	if len(o.Path) < n {
		n = len(o.Path)
	}
	for i := 0; i < n; i++ {
		if c := r.Path[i].Compare(o.Path[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(r.Path) < len(o.Path):
		return -1
	case len(r.Path) > len(o.Path):
		return 1
	default:
		return 0
	}
}

// PathString renders the path in the paper's display form: "/" followed by
// the keys of the components below the root, separated by "/". The root's
// own (empty) key is not shown, so the root renders as "/" and a region
// with key NE under it renders as "/NE".
func (r Record) PathString() string {
	if len(r.Path) <= 1 {
		return "/"
	}
	parts := make([]string, 0, len(r.Path)-1)
	for _, c := range r.Path[1:] {
		parts = append(parts, c.Key)
	}
	return "/" + strings.Join(parts, "/")
}

// Record encoding: path length, then per component key (uvarint-prefixed
// string) and seq (uvarint), then the node token via the xmltok codec. The
// path comes first so comparisons can stop before decoding the token.

// AppendRecord appends the binary encoding of rec to dst.
func AppendRecord(dst []byte, rec Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rec.Path)))
	for _, c := range rec.Path {
		dst = binary.AppendUvarint(dst, uint64(len(c.Key)))
		dst = append(dst, c.Key...)
		dst = binary.AppendUvarint(dst, uint64(c.Seq))
	}
	return xmltok.AppendToken(dst, rec.Tok)
}

// maxPathLen bounds decoded path lengths against corrupt input.
const maxPathLen = 1 << 20

// Decoder decodes records, reusing a scratch buffer for path keys and a
// token decoder across calls — the record-decode path runs once per node in
// the output phase of the merge-sort baseline, so the per-key allocation it
// avoids is one of the hottest in that sorter. Not safe for concurrent use.
type Decoder struct {
	scratch []byte
	tok     xmltok.Decoder
}

// ReadRecord decodes one record from r, returning io.EOF at a clean end.
func (d *Decoder) ReadRecord(r io.ByteReader) (Record, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	if n > maxPathLen {
		return Record{}, fmt.Errorf("keypath: corrupt record: path length %d", n)
	}
	rec := Record{Path: make([]Component, n)}
	for i := range rec.Path {
		keyLen, err := binary.ReadUvarint(r)
		if err != nil {
			return Record{}, unexpected(err)
		}
		if keyLen > maxPathLen {
			return Record{}, fmt.Errorf("keypath: corrupt record: key length %d", keyLen)
		}
		if cap(d.scratch) < int(keyLen) {
			d.scratch = make([]byte, keyLen)
		}
		key := d.scratch[:keyLen]
		if rr, ok := r.(io.Reader); ok {
			if _, err := io.ReadFull(rr, key); err != nil {
				return Record{}, unexpected(err)
			}
		} else {
			for j := range key {
				b, err := r.ReadByte()
				if err != nil {
					return Record{}, unexpected(err)
				}
				key[j] = b
			}
		}
		seq, err := binary.ReadUvarint(r)
		if err != nil {
			return Record{}, unexpected(err)
		}
		if seq > math.MaxInt64 {
			// Rejecting the wrap keeps the decoded order (int64 Seq) in
			// agreement with the encoded comparator (uint64 order).
			return Record{}, fmt.Errorf("keypath: corrupt record: seq %d overflows", seq)
		}
		rec.Path[i] = Component{Key: string(key), Seq: int64(seq)}
	}
	tok, err := d.tok.ReadToken(r)
	if err != nil {
		return Record{}, unexpected(err)
	}
	rec.Tok = tok
	return rec, nil
}

// ReadRecord decodes one record from r with a throwaway Decoder. Streaming
// callers should hold a Decoder and call its ReadRecord instead.
func ReadRecord(r io.ByteReader) (Record, error) {
	var d Decoder
	return d.ReadRecord(r)
}

// CompareEncoded orders two encoded records without decoding their tokens.
// It is the comparator handed to the external sorter. The order is defined
// by internal/sortkey's comparison kernel, whose normalized keys compare
// identically under bytes.Compare; records that do not decode (truncated or
// overlong fields) get a defined total order — they sort after every valid
// continuation at the point of damage instead of silently aliasing to an
// empty key (see sortkey.CompareKeyPath).
func CompareEncoded(a, b []byte) int {
	return sortkey.CompareKeyPath(a, b)
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ErrKeyNotResolvable is returned by the Extractor when the criterion needs
// a subtree pass to compute a key. The key-path representation requires
// every ancestor's key at the moment a descendant record is emitted, so
// this baseline — like the paper's — supports start-resolvable criteria
// (attributes, tag names) only; path criteria are served by NEXSORT and the
// in-memory sorter.
var ErrKeyNotResolvable = fmt.Errorf("keypath: ordering criterion is not resolvable at start tags")
