package keypath

import (
	"bytes"
	"testing"

	"nexsort/internal/xmltok"
)

// FuzzCompareEncodedAgreesWithDecoded pins CompareEncoded (now the
// sortkey comparison kernel) to the semantic order: whenever both inputs
// decode as records, the encoded comparison must rank them exactly as
// Record.Compare ranks the decoded paths. Undecodable inputs are still
// exercised for antisymmetry — the defined malformed-record order — but
// have no decoded order to agree with.
func FuzzCompareEncodedAgreesWithDecoded(f *testing.F) {
	rec := func(r Record) []byte { return AppendRecord(nil, r) }
	tok := xmltok.Token{Kind: xmltok.KindText, Text: "t"}
	seeds := [][]byte{
		rec(Record{Path: []Component{{Key: "", Seq: 0}}, Tok: tok}),
		rec(Record{Path: []Component{{Key: "", Seq: 0}, {Key: "NE", Seq: 2}}, Tok: tok}),
		rec(Record{Path: []Component{{Key: "", Seq: 0}, {Key: "NE", Seq: 2}, {Key: "a\x00b", Seq: 300}}, Tok: tok}),
		rec(Record{Path: []Component{{Key: "zz", Seq: 1}}, Tok: tok}),
		{2, 1, 'A', 1},    // truncated path
		{1, 200, 'x'},     // key length overrun
		{1, 1, 'A', 0x80}, // seq cut mid-varint
	}
	for _, a := range seeds {
		for _, b := range seeds {
			f.Add(a, b)
		}
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		got := CompareEncoded(a, b)
		back := CompareEncoded(b, a)
		if (got < 0) != (back > 0) || (got == 0) != (back == 0) {
			t.Fatalf("antisymmetry: cmp(a,b)=%d cmp(b,a)=%d for a=%x b=%x", got, back, a, b)
		}
		ra, errA := ReadRecord(bytes.NewReader(a))
		rb, errB := ReadRecord(bytes.NewReader(b))
		if errA != nil || errB != nil {
			return
		}
		want := ra.Compare(rb)
		if (got < 0) != (want < 0) || (got == 0) != (want == 0) {
			t.Fatalf("CompareEncoded = %d but decoded Record.Compare = %d\n a=%x (%v)\n b=%x (%v)",
				got, want, a, ra.Path, b, rb.Path)
		}
	})
}
