package keypath

import (
	"strings"

	"nexsort/internal/xmltok"
)

// Row is one display row of the key-path table (Table 1 of the paper).
type Row struct {
	Path    string
	Content string
}

// FormatTable renders records in the paper's Table 1 display form: one row
// per element with its start tag as content, and a text node folded into
// its parent's row when it directly follows it (the paper shows
// "<name>Smith" as a single row).
func FormatTable(recs []Record) []Row {
	var rows []Row
	var lastElemPathLen = -1
	for _, rec := range recs {
		switch rec.Tok.Kind {
		case xmltok.KindStart:
			rows = append(rows, Row{Path: rec.PathString(), Content: startTagString(rec.Tok)})
			lastElemPathLen = len(rec.Path)
		case xmltok.KindText:
			if len(rows) > 0 && len(rec.Path) == lastElemPathLen+1 {
				rows[len(rows)-1].Content += rec.Tok.Text
			} else {
				rows = append(rows, Row{Path: rec.PathString(), Content: rec.Tok.Text})
			}
		case xmltok.KindRunPtr:
			rows = append(rows, Row{Path: rec.PathString(), Content: "(run pointer)"})
		}
	}
	return rows
}

func startTagString(tok xmltok.Token) string {
	var sb strings.Builder
	sb.WriteByte('<')
	sb.WriteString(tok.Name)
	for _, a := range tok.Attrs {
		sb.WriteString(" " + a.Name + `="` + a.Value + `"`)
	}
	sb.WriteByte('>')
	return sb.String()
}
