package keypath

import (
	"fmt"

	"nexsort/internal/xmltok"
)

// Extractor turns an annotated token stream (keys present on start tags, as
// the Annotator produces for start-resolvable criteria) into key-path
// records, one per element, text node and run pointer.
//
// The extractor keeps the current root-to-element path and one child
// counter per open element in memory. This mirrors the paper's baseline:
// the key-path generator inherently carries the full current path — the
// very space overhead on tall documents that Section 1 criticizes the
// baseline for, reproduced here faithfully.
type Extractor struct {
	path     []Component
	childSeq []int64 // next child sequence number per open element; [0] is a virtual super-root
}

// NewExtractor returns an empty extractor.
func NewExtractor() *Extractor {
	return &Extractor{childSeq: []int64{0}}
}

// Depth returns the number of currently open elements.
func (e *Extractor) Depth() int { return len(e.path) }

// OnToken consumes one token. For start tags, text and run pointers it
// returns the node's record and ok=true; end tags return ok=false.
func (e *Extractor) OnToken(tok xmltok.Token) (rec Record, ok bool, err error) {
	switch tok.Kind {
	case xmltok.KindStart:
		if !tok.HasKey {
			return Record{}, false, fmt.Errorf("%w: start tag <%s> has no key", ErrKeyNotResolvable, tok.Name)
		}
		seq := e.nextSeq()
		e.path = append(e.path, Component{Key: tok.Key, Seq: seq})
		e.childSeq = append(e.childSeq, 0)
		return e.record(tok), true, nil

	case xmltok.KindText:
		seq := e.nextSeq()
		e.path = append(e.path, Component{Key: "", Seq: seq})
		rec := e.record(tok)
		e.path = e.path[:len(e.path)-1]
		return rec, true, nil

	case xmltok.KindRunPtr:
		seq := e.nextSeq()
		e.path = append(e.path, Component{Key: tok.Key, Seq: seq})
		rec := e.record(tok)
		e.path = e.path[:len(e.path)-1]
		return rec, true, nil

	case xmltok.KindEnd:
		if len(e.path) == 0 {
			return Record{}, false, fmt.Errorf("keypath: end tag </%s> with no open element", tok.Name)
		}
		e.path = e.path[:len(e.path)-1]
		e.childSeq = e.childSeq[:len(e.childSeq)-1]
		return Record{}, false, nil

	default:
		return Record{}, false, fmt.Errorf("keypath: unsupported token kind %v", tok.Kind)
	}
}

func (e *Extractor) nextSeq() int64 {
	top := len(e.childSeq) - 1
	seq := e.childSeq[top]
	e.childSeq[top]++
	return seq
}

func (e *Extractor) record(tok xmltok.Token) Record {
	path := make([]Component, len(e.path))
	copy(path, e.path)
	return Record{Path: path, Tok: tok}
}

// Builder reconstructs a token stream from records arriving in sorted
// order: the depth-first traversal of the sorted document. It emits start
// tags as paths extend, and end tags as paths retreat — including the
// final end tags on Finish. Like the extractor, it holds the current open
// path in memory.
type Builder struct {
	openComps []Component
	openNames []string
	emit      func(xmltok.Token) error
}

// NewBuilder creates a builder that sends reconstructed tokens to emit.
func NewBuilder(emit func(xmltok.Token) error) *Builder {
	return &Builder{emit: emit}
}

// OnRecord consumes the next record of a sorted stream.
func (b *Builder) OnRecord(rec Record) error {
	if len(rec.Path) == 0 {
		return fmt.Errorf("keypath: record with empty path")
	}
	parent := rec.Path[:len(rec.Path)-1]
	// Find how much of the open chain this record's parent path shares.
	common := 0
	for common < len(b.openComps) && common < len(parent) &&
		b.openComps[common] == parent[common] {
		common++
	}
	// Close elements beyond the common prefix.
	for len(b.openComps) > common {
		if err := b.closeTop(); err != nil {
			return err
		}
	}
	if len(b.openComps) != len(parent) {
		return fmt.Errorf("keypath: record %v arrived with parent not open (records out of order?)", rec.PathString())
	}
	switch rec.Tok.Kind {
	case xmltok.KindStart:
		if err := b.emit(rec.Tok); err != nil {
			return err
		}
		b.openComps = append(b.openComps, rec.Path[len(rec.Path)-1])
		b.openNames = append(b.openNames, rec.Tok.Name)
		return nil
	case xmltok.KindText, xmltok.KindRunPtr:
		return b.emit(rec.Tok)
	default:
		return fmt.Errorf("keypath: record holds unsupported token kind %v", rec.Tok.Kind)
	}
}

func (b *Builder) closeTop() error {
	name := b.openNames[len(b.openNames)-1]
	b.openComps = b.openComps[:len(b.openComps)-1]
	b.openNames = b.openNames[:len(b.openNames)-1]
	return b.emit(xmltok.Token{Kind: xmltok.KindEnd, Name: name})
}

// Finish closes all remaining open elements.
func (b *Builder) Finish() error {
	for len(b.openComps) > 0 {
		if err := b.closeTop(); err != nil {
			return err
		}
	}
	return nil
}
