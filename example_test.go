package nexsort_test

import (
	"fmt"
	"log"
	"strings"

	"nexsort"
)

// demoConfig keeps the examples self-contained: small blocks, memory-backed
// scratch. Production use would keep the defaults (64 KiB blocks, disk
// scratch).
func demoConfig() nexsort.Config {
	return nexsort.Config{BlockSize: 1024, MemoryBytes: 64 << 10, InMemory: true}
}

// The basic head-to-toe sort: every element's child list ordered by an
// attribute.
func ExampleSort() {
	doc := `<fleet><ship name="Orion"/><ship name="Ariel"/><ship name="Baltic"/></fleet>`
	crit := &nexsort.Criterion{Rules: []nexsort.Rule{
		{Tag: "ship", Source: nexsort.ByAttr("name")},
	}}
	var out strings.Builder
	res, err := nexsort.Sort(strings.NewReader(doc), &out, demoConfig(),
		nexsort.Options{Criterion: crit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.String())
	fmt.Println("elements:", res.Elements)
	// Output:
	// <fleet><ship name="Ariel"></ship><ship name="Baltic"></ship><ship name="Orion"></ship></fleet>
	// elements: 4
}

// Criteria can be written as compact specs — handy for configuration and
// the command-line tools.
func ExampleParseCriterion() {
	crit, err := nexsort.ParseCriterion("region=@name,employee=@ID,*=name()")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range crit.Rules {
		tag := r.Tag
		if tag == "" {
			tag = "*"
		}
		fmt.Printf("%s by %s\n", tag, r.Source)
	}
	// Output:
	// region by @name
	// employee by @ID
	// * by name()
}

// Two sorted documents merge in a single pass — the paper's Example 1.1.
func ExampleMerge() {
	crit := nexsort.MustParseCriterion("employee=@ID")
	personnel := `<company><employee ID="323" name="Smith"/></company>`
	payroll := `<company><employee ID="323" salary="45000"/><employee ID="844" salary="52000"/></company>`

	var merged strings.Builder
	rep, err := nexsort.Merge(strings.NewReader(personnel), strings.NewReader(payroll),
		crit, &merged, nexsort.MergeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(merged.String())
	fmt.Println("matched:", rep.Matched)
	// Output:
	// <company><employee ID="323" name="Smith" salary="45000"></employee><employee ID="844" salary="52000"></employee></company>
	// matched: 2
}

// Check verifies sortedness in one pass without sorting anything.
func ExampleCheck() {
	crit := nexsort.MustParseCriterion("item=@sku")
	rep, err := nexsort.Check(strings.NewReader(
		`<inv><item sku="B"/><item sku="A"/></inv>`), crit, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted:", rep.Sorted)
	fmt.Println(rep.Violation.Error())
	// Output:
	// sorted: false
	// check: child 1 (<item> key "A") of <inv> at level 1 sorts before its predecessor (key "B")
}

// Workload generators reproduce the paper's evaluation documents.
func ExampleGenerate() {
	var doc strings.Builder
	stats, err := nexsort.Generate(nexsort.CustomSpec{Fanouts: []int{3, 2}, Seed: 7}, &doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d elements, height %d, max fan-out %d\n",
		stats.Elements, stats.Height, stats.MaxFanout)
	// Output:
	// 10 elements, height 3, max fan-out 3
}
