package nexsort

import (
	"fmt"
	"strings"
)

// ParseCriterion builds a Criterion from a compact textual spec, the
// format the command-line tools use. The spec is a comma-separated list of
// rules, each "tag=source", where tag is an element name ("*" or empty for
// any element) and source is one of:
//
//	@attr          the value of attribute attr
//	name()         the element's tag name
//	text()         the element's first direct text child
//	a/b/text()     the first text of the first descendant chain a/b
//
// Rules apply first-match-wins, e.g.:
//
//	region=@name,branch=@name,employee=@ID,*=name()
//
// A spec with no '=' is shorthand for a single wildcard rule, so "@ID"
// orders every element by its ID attribute.
func ParseCriterion(spec string) (*Criterion, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("nexsort: empty criterion spec")
	}
	c := &Criterion{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tag, srcSpec := "", part
		if i := strings.Index(part, "="); i >= 0 {
			tag, srcSpec = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
		}
		if tag == "*" {
			tag = ""
		}
		src, err := parseSource(srcSpec)
		if err != nil {
			return nil, fmt.Errorf("nexsort: rule %q: %w", part, err)
		}
		c.Rules = append(c.Rules, Rule{Tag: tag, Source: src})
	}
	if len(c.Rules) == 0 {
		return nil, fmt.Errorf("nexsort: criterion spec %q has no rules", spec)
	}
	return c, nil
}

func parseSource(s string) (Source, error) {
	switch {
	case strings.HasPrefix(s, "@"):
		attr := s[1:]
		if attr == "" {
			return Source{}, fmt.Errorf("missing attribute name after '@'")
		}
		return ByAttr(attr), nil
	case s == "name()":
		return ByTag(), nil
	case s == "text()":
		return ByText(), nil
	case strings.HasSuffix(s, "/text()"):
		chain := strings.Split(strings.TrimSuffix(s, "/text()"), "/")
		for _, step := range chain {
			if step == "" {
				return Source{}, fmt.Errorf("empty step in path %q", s)
			}
		}
		return ByPath(chain...), nil
	default:
		return Source{}, fmt.Errorf("unknown key source %q (want @attr, name(), text(), or a/b/text())", s)
	}
}

// MustParseCriterion is ParseCriterion that panics on error, for
// package-level variables in examples and tests.
func MustParseCriterion(spec string) *Criterion {
	c, err := ParseCriterion(spec)
	if err != nil {
		panic(err)
	}
	return c
}
