package nexsort_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nexsort"
	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/em/chaostest"
	"nexsort/internal/keys"
)

// The cancel-anywhere soak: for every trigger point N across a full run's
// device operations, cancel the context at the Nth operation and assert
// the lifecycle contract — the sort stops within K further device
// operations, fails with an error matching context.Canceled, releases
// every frame and budget block, leaves no scratch behind, and a clean
// re-run afterwards is byte-identical with unchanged per-category I/O
// counts. The exhaustion variant slams the scratch device shut at the Nth
// operation instead and demands ErrScratchExhausted or a clean identical
// run (a sort past its last spill write no longer needs scratch space).

// cancelEnv is the chaos soak's environment shape: heavy spilling, full
// hardening, explicit parallelism. compress additionally routes every
// scratch block through the spill codec (CompressSpill), so the trigger
// sweeps land inside compressed reads and writes too — the codec's
// per-operation scratch frames must unwind clean like everything else.
func cancelEnv(parallelism int, compress bool) em.Config {
	return em.Config{
		BlockSize:       512,
		MemBlocks:       16,
		VerifyChecksums: true,
		Retry:           em.RetryPolicy{MaxRetries: 6, RetryCorruptReads: true},
		Parallelism:     parallelism,
		CompressSpill:   compress,
	}
}

// promptnessBound is K: the most device operations a run may perform at or
// after the trigger. The trigger fires inside an operation that already
// passed the device's lifecycle gate, and each of the other goroutines
// (the scanner plus parallelism-1 pool workers) may have one more
// operation in flight past the gate when cancellation becomes visible —
// so the true bound is about parallelism ops; 2p+4 leaves slack without
// ever masking a polling gap, which shows up as hundreds of extra ops,
// not single digits.
func promptnessBound(parallelism int) int64 {
	return int64(2*parallelism + 4)
}

func TestCancelAnywhereSoak(t *testing.T) {
	doc, stats, err := chaostest.Doc(400, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("document: %d elements, %d bytes", stats.Elements, stats.Bytes)
	crit := keys.ByAttrOrTag("key")

	totalTrials, totalCanceled := 0, int64(0)
	for _, algo := range chaostest.Algorithms {
		for _, p := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%v/p%d", algo, p), func(t *testing.T) {
				// The p=2 leg runs the whole sweep with the spill codec in
				// the stack, so cancellation is proven under compression as
				// well as over the plain backend. The p>1 legs additionally
				// run with the async engine's pipelines on (the p=1 leg pins
				// the synchronous paths): triggers then land inside queued
				// write-behind flushes and in-flight prefetches, and the
				// drain — at most two extra engine-side operations — must
				// stay inside the same promptness bound. The p>1 legs also
				// range-partition every final merge, so triggers land inside
				// fence-index spills and reads, the planner's cut scans, and
				// concurrent partition workers — all of which must unwind
				// frame- and budget-clean within the same bound (partition
				// workers are ordinary pool workers, so K is unchanged).
				env := cancelEnv(p, p == 2)
				if p > 1 {
					env.ReadAhead, env.WriteBehind = p/2, p/2
					env.MergeParallel = p
				}
				clean := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{
					Algorithm: algo, Env: env,
				})
				if clean.Err != nil || clean.PanicValue != nil {
					t.Fatalf("clean run failed: err=%v panic=%v", clean.Err, clean.PanicValue)
				}
				if clean.Fired {
					t.Fatal("clean run claims the trigger fired")
				}
				total := clean.TotalOps
				if total < 20 {
					t.Fatalf("clean run performed only %d device ops; workload too small to soak", total)
				}
				if p > 1 && algo == chaostest.MergeSort && clean.Stats.TotalPartitionedMerges() == 0 {
					t.Fatal("partitioned-merge leg ran no partitioned merge; the soak would be vacuous")
				}

				// Sweep trigger points across the whole run. The stride
				// keeps the soak's wall-clock bounded while still landing
				// triggers in every phase (scan, run formation, merge
				// passes, output); N=1 and N=total pin both edges.
				stride := total / 40
				if testing.Short() {
					stride = total / 10
				}
				if stride < 1 {
					stride = 1
				}
				k := promptnessBound(p)
				canceled := 0
				for n := int64(1); n <= total; n += stride {
					for _, trigger := range []int64{n, total} {
						o := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{
							Algorithm: algo, Env: env, TriggerOp: trigger, Mode: chaostest.ModeCancel,
						})
						totalTrials++
						if o.PanicValue != nil {
							t.Fatalf("N=%d: sort panicked: %v", trigger, o.PanicValue)
						}
						if o.BudgetInUse != 0 || o.FramesLive != 0 || o.CodecFramesLive != 0 {
							t.Fatalf("N=%d: leak after unwind: %d budget blocks, %d frames, %d codec frames (err=%v)",
								trigger, o.BudgetInUse, o.FramesLive, o.CodecFramesLive, o.Err)
						}
						if !o.Fired {
							// With the pipelines on, a handful of tail
							// backend reads are timing-dependent — a wasted
							// prefetch may or may not reach the backend — so
							// a trigger aimed at the clean run's very last
							// ops can land beyond this trial's count. The
							// only acceptable outcome is then a clean,
							// byte-identical completion; on a synchronous
							// env a missed trigger is a real miscount.
							async := env.ReadAhead+env.WriteBehind > 0
							if !async || o.Err != nil || !bytes.Equal(o.Output, clean.Output) {
								t.Fatalf("N=%d <= total=%d but the trigger never fired (err=%v)",
									trigger, total, o.Err)
							}
						} else {
							if o.Err == nil {
								t.Fatalf("N=%d: sort claims success after its context was canceled", trigger)
							}
							if !errors.Is(o.Err, context.Canceled) {
								t.Fatalf("N=%d: error does not match context.Canceled: %v", trigger, o.Err)
							}
							if after := o.OpsAfterTrigger(chaostest.CancelTrial{TriggerOp: trigger}); after > k {
								t.Fatalf("N=%d: %d device ops at or after the trigger, bound is %d",
									trigger, after, k)
							}
							canceled++
							totalCanceled += o.Stats.TotalCanceled()
						}
						if trigger == total {
							break // the edge case is the same for every n
						}
					}
				}
				if canceled == 0 {
					t.Fatal("soak ran no fired trials")
				}

				// A clean re-run after the storm must be oblivious to it:
				// byte-identical output, identical operation count,
				// identical per-category I/O accounting.
				rerun := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{
					Algorithm: algo, Env: env,
				})
				if rerun.Err != nil || rerun.PanicValue != nil {
					t.Fatalf("re-run failed: err=%v panic=%v", rerun.Err, rerun.PanicValue)
				}
				if !bytes.Equal(rerun.Output, clean.Output) {
					t.Fatal("re-run output differs from the pre-soak clean run")
				}
				// With the pipelines on, the backend-op total and a few
				// counters are the pipeline's own timing-dependent traffic
				// (wasted prefetches may or may not reach the backend, and
				// flush stalls depend on queue timing); the logical ledger
				// — the paper's accounting — must still match exactly.
				async := env.ReadAhead+env.WriteBehind > 0
				if !async && rerun.TotalOps != total {
					t.Fatalf("re-run performed %d device ops, clean run %d", rerun.TotalOps, total)
				}
				settle := func(m map[string]em.IOCount) map[string]em.IOCount {
					if !async {
						return m
					}
					out := make(map[string]em.IOCount, len(m))
					for cat, c := range m {
						c.PrefetchHits, c.PrefetchWasted, c.FlushStalls = 0, 0, 0
						c.PhysReads, c.PhysReadBytes = 0, 0
						out[cat] = c
					}
					return out
				}
				if !reflect.DeepEqual(settle(rerun.Stats.Snapshot()), settle(clean.Stats.Snapshot())) {
					t.Fatalf("re-run I/O accounting differs:\nclean: %v\nrerun: %v",
						clean.Stats.Snapshot(), rerun.Stats.Snapshot())
				}
				t.Logf("p=%d: %d ops per clean run, %d cancel trials, K=%d", p, total, canceled, k)
			})
		}
	}
	if totalCanceled == 0 {
		t.Error("no trial observed a refused device operation; the device gate never fired")
	}
	t.Logf("cancel soak: %d fired trials, %d refused device ops counted", totalTrials, totalCanceled)
}

// TestExhaustAnywhereSoak slams the scratch device shut at the Nth
// operation: every later write fails with ENOSPC-like exhaustion. The
// sort must either fail with the typed ErrScratchExhausted (leak-free) or
// — when the trigger lands after its last scratch write — complete with
// byte-identical output.
func TestExhaustAnywhereSoak(t *testing.T) {
	doc, _, err := chaostest.Doc(400, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	crit := keys.ByAttrOrTag("key")

	for _, algo := range chaostest.Algorithms {
		for _, p := range []int{1, 8} {
			t.Run(fmt.Sprintf("%v/p%d", algo, p), func(t *testing.T) {
				// The p=8 leg exhausts the device underneath the spill
				// codec, with the async pipelines on and the final merges
				// range-partitioned: a compressed write-behind flush hitting
				// ENOSPC must surface the same typed error at the
				// submitter's next touch point, with no codec scratch
				// pinned and no engine frame leaked — and exhaustion inside
				// a fence-index spill, a preallocated output segment, or a
				// concurrent partition worker must unwind exactly as clean.
				env := cancelEnv(p, p == 8)
				if p == 8 {
					env.ReadAhead, env.WriteBehind = 3, 3
					env.MergeParallel = p
				}
				clean := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{Algorithm: algo, Env: env})
				if clean.Err != nil {
					t.Fatalf("clean run failed: %v", clean.Err)
				}
				total := clean.TotalOps

				stride := total / 20
				if stride < 1 {
					stride = 1
				}
				var failed, completed, exhaustCounted int
				for n := int64(1); n <= total; n += stride {
					o := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{
						Algorithm: algo, Env: env, TriggerOp: n, Mode: chaostest.ModeExhaust,
					})
					if o.PanicValue != nil {
						t.Fatalf("N=%d: sort panicked: %v", n, o.PanicValue)
					}
					if o.BudgetInUse != 0 || o.FramesLive != 0 || o.CodecFramesLive != 0 {
						t.Fatalf("N=%d: leak after unwind: %d budget blocks, %d frames, %d codec frames (err=%v)",
							n, o.BudgetInUse, o.FramesLive, o.CodecFramesLive, o.Err)
					}
					switch {
					case o.Err == nil:
						completed++
						if !bytes.Equal(o.Output, clean.Output) {
							t.Fatalf("N=%d: exhaustion trial completed with wrong bytes", n)
						}
					case em.IsExhausted(o.Err):
						failed++
						if em.Classify(o.Err) != em.ClassExhausted {
							t.Fatalf("N=%d: exhaustion error classified as %v", n, em.Classify(o.Err))
						}
						if o.Stats.TotalExhausted() > 0 {
							exhaustCounted++
						}
					default:
						t.Fatalf("N=%d: untyped error %v", n, o.Err)
					}
				}
				if failed == 0 {
					t.Error("no trial surfaced ErrScratchExhausted")
				}
				if exhaustCounted == 0 {
					t.Error("no failed trial counted an exhausted write in its stats")
				}
				t.Logf("p=%d: %d exhausted with typed error, %d completed past their last write",
					p, failed, completed)
			})
		}
	}
}

// TestCancelScratchClean runs file-backed cancel trials and checks that
// whatever the trigger point, Env.Close leaves the scratch directory
// exactly as it found it.
func TestCancelScratchClean(t *testing.T) {
	doc, _, err := chaostest.Doc(400, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	crit := keys.ByAttrOrTag("key")
	dir := t.TempDir()

	for _, algo := range chaostest.Algorithms {
		// Compressed, with the async pipelines on and partitioned final
		// merges: the scratch file's cleanup must be just as oblivious to
		// the spill representation, the pipeline depth and the merge
		// partitioning (fence-index streams included) as to the trigger
		// point.
		env := cancelEnv(2, true)
		env.ReadAhead, env.WriteBehind = 2, 2
		env.MergeParallel = 2
		env.ScratchDir = dir
		clean := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{Algorithm: algo, Env: env})
		if clean.Err != nil {
			t.Fatalf("clean run failed: %v", clean.Err)
		}
		for _, frac := range []int64{8, 4, 2, 1} {
			n := clean.TotalOps / frac
			if n < 1 {
				n = 1
			}
			before := dirEntries(t, dir)
			o := chaostest.RunCancel(doc, crit, chaostest.CancelTrial{
				Algorithm: algo, Env: env, TriggerOp: n, Mode: chaostest.ModeCancel,
			})
			if o.PanicValue != nil {
				t.Fatalf("%v N=%d: panicked: %v", algo, n, o.PanicValue)
			}
			if o.Fired && !errors.Is(o.Err, context.Canceled) {
				t.Fatalf("%v N=%d: error does not match context.Canceled: %v", algo, n, o.Err)
			}
			if after := dirEntries(t, dir); after != before {
				t.Fatalf("%v N=%d: scratch leak: %d entries before, %d after", algo, n, before, after)
			}
		}
	}
}

// TestDeadlinePropagation checks that an expired deadline surfaces as
// context.DeadlineExceeded — via errors.Is — from every public entry
// point, and that a deadline landing mid-sort unwinds the NEXSORT core
// (including its paged stacks) leak-free.
func TestDeadlinePropagation(t *testing.T) {
	doc, _, err := chaostest.Doc(120, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	crit := nexsort.ByAttrOrTag("key")
	cfg := nexsort.Config{BlockSize: 512, MemoryBytes: 16 * 512, InMemory: true}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()

	t.Run("sort", func(t *testing.T) {
		for _, algo := range []nexsort.Algorithm{nexsort.NEXSORT, nexsort.MergeSort, nexsort.InMemory} {
			_, err := nexsort.SortContext(expired, bytes.NewReader(doc), io.Discard, cfg,
				nexsort.Options{Criterion: crit, Algorithm: algo})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("%v: error does not match context.DeadlineExceeded: %v", algo, err)
			}
		}
	})

	t.Run("merge", func(t *testing.T) {
		sorted := sortedDocForMerge(t, doc, crit, cfg)
		if _, err := nexsort.MergeContext(expired, bytes.NewReader(sorted), bytes.NewReader(sorted),
			crit, io.Discard, nexsort.MergeOptions{}); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("MergeContext: error does not match context.DeadlineExceeded: %v", err)
		}
		if _, err := nexsort.ApplyUpdatesContext(expired, bytes.NewReader(sorted), bytes.NewReader(sorted),
			crit, io.Discard, ""); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("ApplyUpdatesContext: error does not match context.DeadlineExceeded: %v", err)
		}
		if _, _, _, err := nexsort.SortAndMergeContext(expired, bytes.NewReader(doc), bytes.NewReader(doc),
			crit, io.Discard, cfg, nexsort.MergeOptions{}); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("SortAndMergeContext: error does not match context.DeadlineExceeded: %v", err)
		}
	})

	// Mid-run deadline through the core sorter: re-sort under one short
	// deadline until it lands (the first iterations may finish before it
	// expires; the one that does not must unwind leak-free with the typed
	// error). MemBlocks 16 at 512-byte blocks pages the path and data
	// stacks through the device, so the unwind crosses xstack too.
	t.Run("mid-run", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		bigDoc, _, err := chaostest.Doc(800, 5, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			deadlineEnv := cancelEnv(2, true)
			deadlineEnv.ReadAhead, deadlineEnv.WriteBehind = 2, 2
			env, err := em.NewEnvContext(ctx, deadlineEnv)
			if err != nil {
				t.Fatal(err)
			}
			_, sortErr := core.Sort(env, bytes.NewReader(bigDoc), io.Discard,
				core.Options{Criterion: keys.ByAttrOrTag("key")})
			if live := env.Dev.Frames().Live(); live != 0 {
				t.Fatalf("iteration %d: %d frames live after sort (err=%v)", i, live, sortErr)
			}
			if live := env.SpillCodecFramesLive(); live != 0 {
				t.Fatalf("iteration %d: %d codec scratch frames live after sort (err=%v)", i, live, sortErr)
			}
			// The engine's pipeline grant lives until Close by design; the
			// algorithm's own residency is what must be zero here.
			if inUse := env.Budget.InUse() - env.InfraGrantBlocks(); inUse != 0 {
				t.Fatalf("iteration %d: %d budget blocks in use after sort (err=%v)", i, inUse, sortErr)
			}
			env.Close()
			if sortErr != nil {
				if !errors.Is(sortErr, context.DeadlineExceeded) {
					t.Fatalf("iteration %d: error does not match context.DeadlineExceeded: %v", i, sortErr)
				}
				t.Logf("deadline landed on iteration %d", i)
				return
			}
		}
	})
}

// sortedDocForMerge sorts doc once (no context) so the merge tests have a
// legitimately sorted input.
func sortedDocForMerge(t *testing.T, doc []byte, crit *nexsort.Criterion, cfg nexsort.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := nexsort.Sort(bytes.NewReader(doc), &buf, cfg, nexsort.Options{Criterion: crit}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCancelRemovesPartialOutputFiles is the regression for the
// no-partial-output guarantee on the cancellation path: a canceled
// SortFileContext / MergeFilesContext must remove whatever it wrote, so
// the output path either holds a complete document or does not exist.
func TestCancelRemovesPartialOutputFiles(t *testing.T) {
	doc, _, err := chaostest.Doc(120, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	crit := nexsort.ByAttrOrTag("key")
	cfg := nexsort.Config{BlockSize: 512, MemoryBytes: 16 * 512, InMemory: true}
	dir := t.TempDir()

	inPath := filepath.Join(dir, "in.xml")
	if err := os.WriteFile(inPath, doc, 0o644); err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("sortfile", func(t *testing.T) {
		outPath := filepath.Join(dir, "sorted.xml")
		_, err := nexsort.SortFileContext(canceled, inPath, outPath, cfg, nexsort.Options{Criterion: crit})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not match context.Canceled: %v", err)
		}
		if _, statErr := os.Stat(outPath); !errors.Is(statErr, os.ErrNotExist) {
			t.Fatalf("partial output left behind: stat err=%v", statErr)
		}
	})

	t.Run("mergefiles", func(t *testing.T) {
		sorted := sortedDocForMerge(t, doc, crit, cfg)
		sortedPath := filepath.Join(dir, "sorted-input.xml")
		if err := os.WriteFile(sortedPath, sorted, 0o644); err != nil {
			t.Fatal(err)
		}
		outPath := filepath.Join(dir, "merged.xml")
		_, err := nexsort.MergeFilesContext(canceled, sortedPath, sortedPath, outPath, crit, nexsort.MergeOptions{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not match context.Canceled: %v", err)
		}
		if _, statErr := os.Stat(outPath); !errors.Is(statErr, os.ErrNotExist) {
			t.Fatalf("partial output left behind: stat err=%v", statErr)
		}
	})
}
